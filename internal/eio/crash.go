package eio

import (
	"fmt"
	"math/rand"
	"sync"
)

// rawWriter is the torn-write simulation hook: it overwrites a prefix of a
// page's backing storage without maintaining any checksum, exactly as an
// interrupted physical write would. FileStore and MemStore implement it.
type rawWriter interface {
	writeRaw(id PageID, prefix []byte) error
}

// syncer is implemented by stores with an explicit durability barrier
// (FileStore). CrashStore propagates Sync through it.
type syncer interface {
	Sync() error
}

// CrashStore wraps a Store and models a volatile disk write cache, making
// crash consistency a testable property of every structure built on eio:
//
//   - Write is buffered in memory; the inner store is untouched.
//   - Free is deferred; the page stays allocated on the inner store until
//     the next Sync (the classic "no reuse before checkpoint" rule, which
//     is what keeps a crash from clobbering committed pages).
//   - Alloc passes through, because ids must come from the inner store. An
//     allocation that is never synced leaves only unreferenced tail pages
//     behind — the committed superblock never points at them.
//   - Sync flushes buffered writes in order, applies deferred frees, and
//     then syncs the inner store, making everything durable.
//   - Crash drops all un-synced work. In torn-write mode the last buffered
//     write is additionally applied as a partial prefix with a stale
//     checksum trailer — the worst-case image a power loss can leave.
//
// After Crash the CrashStore is dead (every operation fails with
// ErrCrashed) and the inner store holds the post-crash disk image: close
// it with FileStore.CloseCrash and reopen the file to simulate recovery.
type CrashStore struct {
	mu      sync.Mutex
	inner   Store
	rng     *rand.Rand
	torn    bool
	crashed bool

	log   []pendingWrite      // buffered writes, oldest first
	index map[PageID]int      // page -> index of its latest buffered write
	freed map[PageID]struct{} // deferred frees
}

type pendingWrite struct {
	id   PageID
	data []byte
}

var _ Store = (*CrashStore)(nil)

// NewCrashStore wraps inner in a crash-simulating volatile cache. The seed
// drives torn-write lengths, so failures reproduce exactly.
func NewCrashStore(inner Store, seed int64) *CrashStore {
	return &CrashStore{
		inner: inner,
		rng:   rand.New(rand.NewSource(seed)),
		index: make(map[PageID]int),
		freed: make(map[PageID]struct{}),
	}
}

// SetTornWrites toggles tearing of the last in-flight write on Crash.
func (c *CrashStore) SetTornWrites(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.torn = on
}

// Crashed reports whether Crash has been called.
func (c *CrashStore) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// Pending returns the number of buffered (un-synced) page writes.
func (c *CrashStore) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.log)
}

// PageSize implements Store.
func (c *CrashStore) PageSize() int { return c.inner.PageSize() }

// Alloc implements Store.
func (c *CrashStore) Alloc() (PageID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return NilPage, fmt.Errorf("eio: alloc: %w", ErrCrashed)
	}
	return c.inner.Alloc()
}

// Free implements Store. The free is deferred until Sync so that a crash
// can never hand a committed page's storage to a new owner.
func (c *CrashStore) Free(id PageID) error {
	if id == NilPage {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return fmt.Errorf("eio: free: %w", ErrCrashed)
	}
	if _, dead := c.freed[id]; dead {
		return fmt.Errorf("eio: page %d already freed: %w", id, ErrBadPage)
	}
	c.freed[id] = struct{}{}
	c.dropPendingLocked(id)
	return nil
}

// Read implements Store: buffered writes win over the inner store.
func (c *CrashStore) Read(id PageID, buf []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return fmt.Errorf("eio: read: %w", ErrCrashed)
	}
	if len(buf) < c.inner.PageSize() {
		return fmt.Errorf("eio: read buffer %d bytes: %w", len(buf), ErrPageSize)
	}
	if _, dead := c.freed[id]; dead {
		return fmt.Errorf("eio: page %d is freed: %w", id, ErrBadPage)
	}
	if i, ok := c.index[id]; ok {
		copy(buf, c.log[i].data)
		return nil
	}
	return c.inner.Read(id, buf)
}

// Write implements Store by buffering the page in the volatile cache.
func (c *CrashStore) Write(id PageID, buf []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return fmt.Errorf("eio: write: %w", ErrCrashed)
	}
	if len(buf) != c.inner.PageSize() {
		return fmt.Errorf("eio: write buffer %d bytes: %w", len(buf), ErrPageSize)
	}
	if _, dead := c.freed[id]; dead {
		return fmt.Errorf("eio: page %d is freed: %w", id, ErrBadPage)
	}
	data := make([]byte, len(buf))
	copy(data, buf)
	c.dropPendingLocked(id)
	c.index[id] = len(c.log)
	c.log = append(c.log, pendingWrite{id: id, data: data})
	return nil
}

// dropPendingLocked removes any buffered write for id (tombstoned in the
// log, removed from the index).
func (c *CrashStore) dropPendingLocked(id PageID) {
	if i, ok := c.index[id]; ok {
		c.log[i].id = NilPage
		c.log[i].data = nil
		delete(c.index, id)
	}
}

// Sync makes all buffered work durable: writes flush in order, deferred
// frees apply, and the inner store's own Sync (if any) commits the state.
func (c *CrashStore) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return fmt.Errorf("eio: sync: %w", ErrCrashed)
	}
	for _, w := range c.log {
		if w.id == NilPage {
			continue // superseded or freed before reaching the disk
		}
		if err := c.inner.Write(w.id, w.data); err != nil {
			return fmt.Errorf("eio: sync flush: %w", err)
		}
	}
	c.log = c.log[:0]
	clear(c.index)
	for id := range c.freed {
		if err := c.inner.Free(id); err != nil {
			return fmt.Errorf("eio: sync free: %w", err)
		}
	}
	clear(c.freed)
	if s, ok := c.inner.(syncer); ok {
		if err := s.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// Crash simulates power loss: every un-synced write and free is dropped.
// In torn-write mode the most recent buffered write is applied as a
// partial prefix (at least one byte, never the whole slot) with a stale
// checksum trailer. It returns the id of the torn page, or NilPage.
//
// The CrashStore is unusable afterwards; the inner store holds the
// post-crash image. For a FileStore, call CloseCrash and reopen the path
// to simulate recovery.
func (c *CrashStore) Crash() (PageID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return NilPage, fmt.Errorf("eio: crash: %w", ErrCrashed)
	}
	c.crashed = true
	torn := NilPage
	if c.torn {
		for i := len(c.log) - 1; i >= 0; i-- {
			w := c.log[i]
			if w.id == NilPage {
				continue
			}
			rw, ok := c.inner.(rawWriter)
			if !ok {
				break
			}
			n := 1 + c.rng.Intn(len(w.data))
			if err := rw.writeRaw(w.id, w.data[:n]); err != nil {
				return NilPage, fmt.Errorf("eio: tear page %d: %w", w.id, err)
			}
			torn = w.id
			break
		}
	}
	c.log = nil
	c.index = nil
	c.freed = nil
	return torn, nil
}

// Stats implements Store. Buffered writes count against the inner store
// only when they are flushed by Sync.
func (c *CrashStore) Stats() Stats { return c.inner.Stats() }

// ResetStats implements Store by delegating to the inner store. Pending
// (unsynced) writes and the crashed flag are NOT reset — only accounting
// is.
func (c *CrashStore) ResetStats() { c.inner.ResetStats() }

// Pages implements Store, counting deferred frees as already gone.
func (c *CrashStore) Pages() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inner.Pages() - len(c.freed)
}

// Close flushes buffered work (via Sync) and closes the inner store. After
// a Crash it closes nothing — the caller owns the post-crash image.
func (c *CrashStore) Close() error {
	c.mu.Lock()
	crashed := c.crashed
	c.mu.Unlock()
	if crashed {
		return nil
	}
	if err := c.Sync(); err != nil {
		c.inner.Close()
		return err
	}
	return c.inner.Close()
}
