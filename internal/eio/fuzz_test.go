package eio

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzRecordRoundTrip feeds arbitrary payloads and page sizes through the
// record store. Run with `go test -fuzz=FuzzRecordRoundTrip ./internal/eio`
// to explore; the seed corpus runs as an ordinary test.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint16(32))
	f.Add([]byte("hello"), uint16(32))
	f.Add(bytes.Repeat([]byte{0xAA}, 1000), uint16(48))
	f.Add([]byte{1, 2, 3}, uint16(4096))
	f.Fuzz(func(t *testing.T, data []byte, pageSize16 uint16) {
		pageSize := int(pageSize16)
		if pageSize < 24 || pageSize > 1<<16 {
			t.Skip()
		}
		if len(data) > 1<<16 {
			t.Skip()
		}
		store := NewMemStore(pageSize)
		defer store.Close()
		rs := NewRecordStore(store)
		id, err := rs.Put(data)
		if err != nil {
			t.Fatalf("put: %v", err)
		}
		got, err := rs.Get(id)
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round trip mismatch: %d vs %d bytes", len(got), len(data))
		}
		// Update to a mutated payload, then delete; nothing may leak.
		mutated := append(append([]byte{0x42}, data...), 0x17)
		if err := rs.Update(id, mutated); err != nil {
			t.Fatalf("update: %v", err)
		}
		got, err = rs.Get(id)
		if err != nil || !bytes.Equal(got, mutated) {
			t.Fatalf("update round trip: %v", err)
		}
		if err := rs.Delete(id); err != nil {
			t.Fatalf("delete: %v", err)
		}
		if store.Pages() != 0 {
			t.Fatalf("%d pages leaked", store.Pages())
		}
	})
}

// FuzzWALRecord throws arbitrary bytes at the redo-record parser. The
// contract under attack: hostile WAL contents (torn tails, bit rot, stale
// records from a smaller page size) must come back as an error, never as a
// panic or an out-of-range page image.
func FuzzWALRecord(f *testing.F) {
	good := encodeWALRecord(7, []walWrite{
		{id: 3, image: bytes.Repeat([]byte{0x11}, 64)},
		{id: 9, image: bytes.Repeat([]byte{0x22}, 64)},
	}, 64)
	f.Add(good, uint16(64))
	f.Add(good[:len(good)-5], uint16(64)) // torn tail
	f.Add(good, uint16(32))               // parsed at the wrong page size
	f.Add([]byte{}, uint16(64))
	f.Add(make([]byte, 256), uint16(64)) // all zeros: the erased-WAL state
	f.Fuzz(func(t *testing.T, data []byte, pageSize16 uint16) {
		pageSize := int(pageSize16)
		if pageSize < minTxPageSize || pageSize > 1<<15 {
			t.Skip()
		}
		lsn, writes, err := decodeWALRecord(data, pageSize)
		if err != nil {
			return
		}
		// Whatever decoded must be internally consistent: full-page images
		// only, valid ids, and it must re-encode to a decodable record.
		for _, w := range writes {
			if len(w.image) != pageSize {
				t.Fatalf("decoded image of %d bytes, page size %d", len(w.image), pageSize)
			}
			if w.id == NilPage {
				t.Fatal("decoded a write to NilPage")
			}
		}
		re := encodeWALRecord(lsn, writes, pageSize)
		lsn2, writes2, err := decodeWALRecord(re, pageSize)
		if err != nil || lsn2 != lsn || len(writes2) != len(writes) {
			t.Fatalf("re-encode round trip: lsn %d/%d, %d/%d writes, %v",
				lsn, lsn2, len(writes), len(writes2), err)
		}
	})
}

// FuzzVerifyFile feeds arbitrary bytes to the on-disk verifier as if they
// were a store file. VerifyFile inspects untrusted input by design
// (rsinspect points it at whatever path the operator names), so it must
// return an error or a damage report — never panic or loop.
func FuzzVerifyFile(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a store"))
	f.Add(make([]byte, 4096))
	// A genuine (tiny) store file as a seed so the fuzzer can mutate from a
	// valid superblock.
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.db")
	fs, err := CreateFileStore(path, 32)
	if err != nil {
		f.Fatal(err)
	}
	if _, err := fs.Alloc(); err != nil {
		f.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip()
		}
		p := filepath.Join(t.TempDir(), "fuzz.db")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		rep, err := VerifyFile(p)
		if err == nil && rep == nil {
			t.Fatal("VerifyFile returned neither report nor error")
		}
	})
}

// FuzzAnchor does the same for the anchor codec: arbitrary bytes either
// fail or decode to values that survive a round trip.
func FuzzAnchor(f *testing.F) {
	f.Add(encodeAnchor(1, 0))
	f.Add(encodeAnchor(^uint64(0), ^uint64(0)))
	f.Add([]byte{})
	f.Add(make([]byte, anchorSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		seq, applied, err := decodeAnchor(data)
		if err != nil {
			return
		}
		s2, a2, err := decodeAnchor(encodeAnchor(seq, applied))
		if err != nil || s2 != seq || a2 != applied {
			t.Fatalf("anchor round trip: (%d,%d) vs (%d,%d), %v", seq, applied, s2, a2, err)
		}
	})
}
