package eio

import (
	"bytes"
	"testing"
)

// FuzzRecordRoundTrip feeds arbitrary payloads and page sizes through the
// record store. Run with `go test -fuzz=FuzzRecordRoundTrip ./internal/eio`
// to explore; the seed corpus runs as an ordinary test.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint16(32))
	f.Add([]byte("hello"), uint16(32))
	f.Add(bytes.Repeat([]byte{0xAA}, 1000), uint16(48))
	f.Add([]byte{1, 2, 3}, uint16(4096))
	f.Fuzz(func(t *testing.T, data []byte, pageSize16 uint16) {
		pageSize := int(pageSize16)
		if pageSize < 24 || pageSize > 1<<16 {
			t.Skip()
		}
		if len(data) > 1<<16 {
			t.Skip()
		}
		store := NewMemStore(pageSize)
		defer store.Close()
		rs := NewRecordStore(store)
		id, err := rs.Put(data)
		if err != nil {
			t.Fatalf("put: %v", err)
		}
		got, err := rs.Get(id)
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round trip mismatch: %d vs %d bytes", len(got), len(data))
		}
		// Update to a mutated payload, then delete; nothing may leak.
		mutated := append(append([]byte{0x42}, data...), 0x17)
		if err := rs.Update(id, mutated); err != nil {
			t.Fatalf("update: %v", err)
		}
		got, err = rs.Get(id)
		if err != nil || !bytes.Equal(got, mutated) {
			t.Fatalf("update round trip: %v", err)
		}
		if err := rs.Delete(id); err != nil {
			t.Fatalf("delete: %v", err)
		}
		if store.Pages() != 0 {
			t.Fatalf("%d pages leaked", store.Pages())
		}
	})
}
