package eio

import (
	"container/list"
	"fmt"
	"sync"
)

// PoolStats counts buffer-pool events. Hits cost nothing; every miss is one
// read on the backing store, and every dirty eviction or flush is one write.
type PoolStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Writeback uint64
}

// Pool is an LRU buffer pool over a backing Store. It models a main memory
// of M pages, the "internal memory" of the I/O model: accesses served from
// the pool are free, and only traffic to the backing store counts as I/O.
//
// Writes are buffered (write-back): a page is written to the backing store
// only when it is evicted or on Flush/Close.
type Pool struct {
	mu      sync.Mutex
	backing Store
	cap     int
	frames  map[PageID]*list.Element
	lru     *list.List // front = most recent; values are *frame
	pstats  PoolStats
	closed  bool
}

type frame struct {
	id    PageID
	data  []byte
	dirty bool
}

var _ Store = (*Pool)(nil)

// NewPool wraps backing with an LRU pool of capacity pages (capacity ≥ 1).
func NewPool(backing Store, capacity int) *Pool {
	if capacity < 1 {
		panic("eio: pool capacity must be at least 1")
	}
	return &Pool{
		backing: backing,
		cap:     capacity,
		frames:  make(map[PageID]*list.Element, capacity),
		lru:     list.New(),
	}
}

// PageSize implements Store.
func (p *Pool) PageSize() int { return p.backing.PageSize() }

// Alloc implements Store. The new page enters the pool dirty, so creating
// and immediately writing a page costs a single backing write when it is
// eventually evicted.
func (p *Pool) Alloc() (PageID, error) {
	id, err := p.backing.Alloc()
	if err != nil {
		return NilPage, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.insertLocked(&frame{id: id, data: make([]byte, p.backing.PageSize()), dirty: true}); err != nil {
		// The eviction write-back failed; release the page we just
		// allocated so it is not leaked (best-effort — the insert error
		// is the one worth reporting).
		_ = p.backing.Free(id)
		return NilPage, err
	}
	return id, nil
}

// Free implements Store. A pooled copy is dropped without write-back.
func (p *Pool) Free(id PageID) error {
	p.mu.Lock()
	if el, ok := p.frames[id]; ok {
		p.lru.Remove(el)
		delete(p.frames, id)
	}
	p.mu.Unlock()
	return p.backing.Free(id)
}

// Read implements Store.
func (p *Pool) Read(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("eio: read on closed pool")
	}
	// Validate up front so behavior does not depend on cache state: the
	// backing store would reject a short buffer on a miss, so a hit must
	// reject it too rather than silently truncating.
	if len(buf) < p.backing.PageSize() {
		return fmt.Errorf("eio: read buffer %d bytes: %w", len(buf), ErrPageSize)
	}
	if el, ok := p.frames[id]; ok {
		p.pstats.Hits++
		p.lru.MoveToFront(el)
		copy(buf, el.Value.(*frame).data)
		return nil
	}
	p.pstats.Misses++
	fr := &frame{id: id, data: make([]byte, p.backing.PageSize())}
	if err := p.backing.Read(id, fr.data); err != nil {
		return err
	}
	if err := p.insertLocked(fr); err != nil {
		return err
	}
	copy(buf, fr.data)
	return nil
}

// Write implements Store.
func (p *Pool) Write(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("eio: write on closed pool")
	}
	if len(buf) != p.backing.PageSize() {
		return fmt.Errorf("eio: write buffer %d bytes: %w", len(buf), ErrPageSize)
	}
	if el, ok := p.frames[id]; ok {
		p.pstats.Hits++
		fr := el.Value.(*frame)
		copy(fr.data, buf)
		fr.dirty = true
		p.lru.MoveToFront(el)
		return nil
	}
	p.pstats.Misses++
	fr := &frame{id: id, data: make([]byte, p.backing.PageSize()), dirty: true}
	copy(fr.data, buf)
	return p.insertLocked(fr)
}

// insertLocked adds fr to the pool, evicting the LRU frame if full.
func (p *Pool) insertLocked(fr *frame) error {
	for p.lru.Len() >= p.cap {
		tail := p.lru.Back()
		victim := tail.Value.(*frame)
		if victim.dirty {
			p.pstats.Writeback++
			if err := p.backing.Write(victim.id, victim.data); err != nil {
				return fmt.Errorf("eio: evict page %d: %w", victim.id, err)
			}
		}
		p.pstats.Evictions++
		p.lru.Remove(tail)
		delete(p.frames, victim.id)
	}
	p.frames[fr.id] = p.lru.PushFront(fr)
	return nil
}

// Flush writes every dirty pooled page to the backing store.
func (p *Pool) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flushLocked()
}

func (p *Pool) flushLocked() error {
	for el := p.lru.Front(); el != nil; el = el.Next() {
		fr := el.Value.(*frame)
		if fr.dirty {
			p.pstats.Writeback++
			if err := p.backing.Write(fr.id, fr.data); err != nil {
				return fmt.Errorf("eio: flush page %d: %w", fr.id, err)
			}
			fr.dirty = false
		}
	}
	return nil
}

// Stats implements Store, reporting the backing store's counters only —
// i.e. the true block-transfer cost after caching. Pool hits are free in
// the I/O model and therefore never appear here; use PoolStats for the
// cache-level view (hits, misses, evictions, dirty write-backs).
func (p *Pool) Stats() Stats { return p.backing.Stats() }

// ResetStats implements Store; it clears both the backing store's I/O
// counters and the pool's own PoolStats counters, so a measurement window
// opened with ResetStats sees consistent zeroes at both levels. Pooled
// page contents and dirty flags are untouched — resetting accounting never
// changes caching behavior.
func (p *Pool) ResetStats() {
	p.mu.Lock()
	p.pstats = PoolStats{}
	p.mu.Unlock()
	p.backing.ResetStats()
}

// PoolStats returns the cache-event counters (hits, misses, evictions,
// dirty write-backs) accumulated since creation or the last ResetStats.
func (p *Pool) PoolStats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pstats
}

// Dirty returns the number of pooled pages whose contents have not yet
// been written back to the backing store.
func (p *Pool) Dirty() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for el := p.lru.Front(); el != nil; el = el.Next() {
		if el.Value.(*frame).dirty {
			n++
		}
	}
	return n
}

// Cap returns the pool capacity M in pages.
func (p *Pool) Cap() int { return p.cap }

// Resident returns the number of pages currently held in the pool.
func (p *Pool) Resident() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lru.Len()
}

// Pages implements Store.
func (p *Pool) Pages() int { return p.backing.Pages() }

// LivePageIDs implements PageLister when the backing store does.
// Allocation state passes straight through the pool, so no flush is
// needed for the listing to be exact.
func (p *Pool) LivePageIDs() ([]PageID, error) {
	pl, ok := p.backing.(PageLister)
	if !ok {
		return nil, fmt.Errorf("eio: pool: backing store cannot enumerate pages")
	}
	return pl.LivePageIDs()
}

// Close flushes dirty pages and closes the backing store.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	err := p.flushLocked()
	p.closed = true
	p.mu.Unlock()
	if cerr := p.backing.Close(); err == nil {
		err = cerr
	}
	return err
}
