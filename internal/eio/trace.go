package eio

import (
	"fmt"
	"sync/atomic"
	"time"
)

// TraceEvent is one block-level operation observed by a TraceStore. Events
// are the unit of the observability layer (internal/obs): sinks aggregate
// them into histograms, spool them to JSONL files, or keep them in a ring
// buffer for post-mortem inspection.
type TraceEvent struct {
	// Seq is the 1-based sequence number of the event within its
	// TraceStore, assigned atomically across goroutines.
	Seq uint64
	// Op is the operation kind (OpRead, OpWrite, OpAlloc, OpFree).
	Op Op
	// Page is the page operated on (for Alloc, the id returned).
	Page PageID
	// Bytes is the number of payload bytes transferred: the page size for
	// reads and writes, 0 for alloc/free.
	Bytes int
	// Latency is the wall-clock duration of the inner store call.
	Latency time.Duration
	// Scope is the logical operation this I/O belongs to ("insert",
	// "query", ...), set via TraceStore.SetScope by higher layers. Empty
	// when no scope is active.
	Scope string
	// Err reports whether the inner store returned an error.
	Err bool
}

// TraceSink consumes trace events. Implementations must be safe for
// concurrent use: a TraceStore calls Emit from whatever goroutine performs
// the I/O, and queries may run in parallel.
//
// Emit must not call back into the emitting TraceStore (it would deadlock
// on stores that serialize internally and would recurse on ones that do
// not).
type TraceSink interface {
	Emit(TraceEvent)
}

// TraceStore wraps a Store and emits one TraceEvent per operation to an
// attached TraceSink. With no sink attached the wrapper is a thin
// pass-through: a single atomic load per operation and no clock reads, so
// it can be left in place permanently and only pays when someone is
// listening (see BenchmarkTraceStoreNilSink).
//
// Stats, ResetStats and Pages delegate to the inner store: a TraceStore
// adds observation, never accounting of its own.
type TraceStore struct {
	inner Store
	sink  atomic.Pointer[sinkBox]
	scope atomic.Pointer[string]
	seq   atomic.Uint64
}

// sinkBox wraps the interface value so it can live behind atomic.Pointer.
type sinkBox struct{ s TraceSink }

var _ Store = (*TraceStore)(nil)

// NewTraceStore wraps inner with no sink attached.
func NewTraceStore(inner Store) *TraceStore {
	return &TraceStore{inner: inner}
}

// SetSink attaches sink (nil detaches). Safe to call at any time, including
// while other goroutines are mid-operation; those operations keep the sink
// they loaded.
func (t *TraceStore) SetSink(sink TraceSink) {
	if sink == nil {
		t.sink.Store(nil)
		return
	}
	t.sink.Store(&sinkBox{s: sink})
}

// Sink returns the attached sink, or nil.
func (t *TraceStore) Sink() TraceSink {
	if b := t.sink.Load(); b != nil {
		return b.s
	}
	return nil
}

// SetScope labels subsequent events with the given logical operation name.
// An empty string clears the label. The label is read atomically by
// concurrent I/Os, so mixed concurrent scopes never race — but if two
// logical operations overlap in time their events may carry either label;
// callers that need exact per-operation attribution must serialize
// (obs.Instrumented does).
func (t *TraceStore) SetScope(name string) {
	if name == "" {
		t.scope.Store(nil)
		return
	}
	t.scope.Store(&name)
}

// currentScope returns the active scope label, or "".
func (t *TraceStore) currentScope() string {
	if p := t.scope.Load(); p != nil {
		return *p
	}
	return ""
}

// emit builds and delivers one event. Callers pass the sink they loaded
// before timing began so attach/detach races stay consistent.
func (t *TraceStore) emit(sink TraceSink, op Op, page PageID, bytes int, start time.Time, err error) {
	sink.Emit(TraceEvent{
		Seq:     t.seq.Add(1),
		Op:      op,
		Page:    page,
		Bytes:   bytes,
		Latency: time.Since(start),
		Scope:   t.currentScope(),
		Err:     err != nil,
	})
}

// PageSize implements Store.
func (t *TraceStore) PageSize() int { return t.inner.PageSize() }

// Alloc implements Store.
func (t *TraceStore) Alloc() (PageID, error) {
	b := t.sink.Load()
	if b == nil {
		return t.inner.Alloc()
	}
	start := time.Now()
	id, err := t.inner.Alloc()
	t.emit(b.s, OpAlloc, id, 0, start, err)
	return id, err
}

// Free implements Store.
func (t *TraceStore) Free(id PageID) error {
	b := t.sink.Load()
	if b == nil {
		return t.inner.Free(id)
	}
	start := time.Now()
	err := t.inner.Free(id)
	t.emit(b.s, OpFree, id, 0, start, err)
	return err
}

// Read implements Store.
func (t *TraceStore) Read(id PageID, buf []byte) error {
	b := t.sink.Load()
	if b == nil {
		return t.inner.Read(id, buf)
	}
	start := time.Now()
	err := t.inner.Read(id, buf)
	t.emit(b.s, OpRead, id, t.inner.PageSize(), start, err)
	return err
}

// Write implements Store.
func (t *TraceStore) Write(id PageID, buf []byte) error {
	b := t.sink.Load()
	if b == nil {
		return t.inner.Write(id, buf)
	}
	start := time.Now()
	err := t.inner.Write(id, buf)
	t.emit(b.s, OpWrite, id, len(buf), start, err)
	return err
}

// Stats implements Store, reporting the inner store's counters. Like every
// wrapper in this package, a TraceStore keeps no counters of its own.
func (t *TraceStore) Stats() Stats { return t.inner.Stats() }

// ResetStats implements Store by delegating to the inner store. Event
// sequence numbers are not reset — a trace is an append-only log.
func (t *TraceStore) ResetStats() { t.inner.ResetStats() }

// Pages implements Store.
func (t *TraceStore) Pages() int { return t.inner.Pages() }

// Sync delegates to the inner store's durability barrier, if any, so
// transactional commit points pass through a traced stack unweakened.
func (t *TraceStore) Sync() error {
	if s, ok := t.inner.(syncer); ok {
		return s.Sync()
	}
	return nil
}

// writeRaw delegates torn writes so crash simulators compose with tracing.
func (t *TraceStore) writeRaw(id PageID, prefix []byte) error {
	rw, ok := t.inner.(rawWriter)
	if !ok {
		return fmt.Errorf("eio: inner store does not support raw writes")
	}
	return rw.writeRaw(id, prefix)
}

// LivePageIDs implements PageLister when the inner store does.
func (t *TraceStore) LivePageIDs() ([]PageID, error) {
	pl, ok := t.inner.(PageLister)
	if !ok {
		return nil, fmt.Errorf("eio: trace: inner store cannot enumerate pages")
	}
	return pl.LivePageIDs()
}

// Close implements Store. The sink is detached first so a closing flurry
// of inner-store activity is not observed half-torn; sinks with resources
// of their own (files) are closed by their owner, not here.
func (t *TraceStore) Close() error {
	t.sink.Store(nil)
	return t.inner.Close()
}
