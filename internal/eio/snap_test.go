package eio

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func fill(ps int, b byte) []byte { return bytes.Repeat([]byte{b}, ps) }

// TestSnapStoreEpochIsolation pins the core guarantee: a view fixed at a
// pinned epoch keeps reading that epoch's page contents across later
// overwrites, frees and commits, while the writer and newer views see the
// new state.
func TestSnapStoreEpochIsolation(t *testing.T) {
	s := NewSnapStore(NewMemStore(64), 4)
	defer s.Close()
	ps := s.PageSize()

	a, _ := s.Alloc()
	b, _ := s.Alloc()
	if err := s.Write(a, fill(ps, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(b, fill(ps, 2)); err != nil {
		t.Fatal(err)
	}
	e1, err := s.Commit()
	if err != nil {
		t.Fatal(err)
	}

	// Reader pins epoch 1.
	pinned := s.Pin()
	if pinned != e1 {
		t.Fatalf("Pin = %d, want %d", pinned, e1)
	}
	v1 := s.View(pinned)

	// Writer overwrites page a, frees page b, allocates c; commits epoch 2.
	if err := s.Write(a, fill(ps, 11)); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(b); err != nil {
		t.Fatal(err)
	}
	c, _ := s.Alloc()
	if err := s.Write(c, fill(ps, 3)); err != nil {
		t.Fatal(err)
	}
	e2, err := s.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if e2 != e1+1 {
		t.Fatalf("epoch after commit = %d, want %d", e2, e1+1)
	}

	// The pinned view still sees epoch 1: old a, live b.
	buf := make([]byte, ps)
	if err := v1.Read(a, buf); err != nil || buf[0] != 1 {
		t.Fatalf("view read a = (%v, %d), want content 1", err, buf[0])
	}
	if err := v1.Read(b, buf); err != nil || buf[0] != 2 {
		t.Fatalf("view read b = (%v, %d), want content 2", err, buf[0])
	}

	// A fresh view at epoch 2 sees the new state; b is gone.
	p2 := s.Pin()
	v2 := s.View(p2)
	if err := v2.Read(a, buf); err != nil || buf[0] != 11 {
		t.Fatalf("v2 read a = (%v, %d), want content 11", err, buf[0])
	}
	if err := v2.Read(b, buf); !errors.Is(err, ErrBadPage) {
		t.Fatalf("v2 read freed b: want ErrBadPage, got %v", err)
	}
	if err := v2.Read(c, buf); err != nil || buf[0] != 3 {
		t.Fatalf("v2 read c = (%v, %d), want content 3", err, buf[0])
	}

	// Writer-side read of freed b fails; of a sees current content.
	if err := s.Read(b, buf); !errors.Is(err, ErrBadPage) {
		t.Fatalf("writer read freed b: want ErrBadPage, got %v", err)
	}
	if err := s.Read(a, buf); err != nil || buf[0] != 11 {
		t.Fatalf("writer read a = (%v, %d), want 11", err, buf[0])
	}

	// b's inner free is deferred while epoch 1 is pinned.
	if got := s.SnapStats().PendingFrees; got != 1 {
		t.Fatalf("PendingFrees = %d, want 1", got)
	}
	s.Unpin(pinned)
	s.Unpin(p2)
	if _, err := s.Commit(); err != nil { // empty commit still GCs
		t.Fatal(err)
	}
	st := s.SnapStats()
	if st.PendingFrees != 0 || st.Versions != 0 {
		t.Fatalf("after GC: %+v, want no pending frees or versions", st)
	}
}

// TestSnapStoreViewIsReadOnly pins ErrReadOnly on every mutating view
// method.
func TestSnapStoreViewIsReadOnly(t *testing.T) {
	s := NewSnapStore(NewMemStore(64), 0)
	defer s.Close()
	id, _ := s.Alloc()
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	v := s.View(s.Pin())
	if _, err := v.Alloc(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("view Alloc: %v", err)
	}
	if err := v.Free(id); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("view Free: %v", err)
	}
	if err := v.Write(id, fill(s.PageSize(), 9)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("view Write: %v", err)
	}
}

// TestSnapStoreUncommittedInvisible checks that a batch in flight is
// invisible to views — including through a TxStore, whose buffered
// transaction writes must never leak into a snapshot read.
func TestSnapStoreUncommittedInvisible(t *testing.T) {
	for _, durable := range []bool{false, true} {
		name := "plain"
		if durable {
			name = "tx"
		}
		t.Run(name, func(t *testing.T) {
			var inner Store = NewMemStore(64)
			var tx *TxStore
			if durable {
				var err error
				tx, err = NewTxStore(inner, TxOptions{WALPages: 8})
				if err != nil {
					t.Fatal(err)
				}
				inner = tx
			}
			s := NewSnapStore(inner, 0)
			defer s.Close()
			ps := s.PageSize()

			id, _ := s.Alloc()
			if err := s.Write(id, fill(ps, 1)); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Commit(); err != nil {
				t.Fatal(err)
			}

			v := s.View(s.Pin())
			if durable {
				if err := tx.Begin(); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Write(id, fill(ps, 99)); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, ps)
			if err := v.Read(id, buf); err != nil || buf[0] != 1 {
				t.Fatalf("mid-batch view read = (%v, %d), want committed content 1", err, buf[0])
			}
			if durable {
				if err := tx.Commit(); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := s.Commit(); err != nil {
				t.Fatal(err)
			}
			// Still epoch-1 content after the commit — the pin holds.
			if err := v.Read(id, buf); err != nil || buf[0] != 1 {
				t.Fatalf("post-commit view read = (%v, %d), want 1", err, buf[0])
			}
		})
	}
}

// TestSnapStoreAbort checks that Abort discards the batch's capture
// bookkeeping: with a TxStore rollback restoring the inner pages, reads at
// the pinned epoch come back from the (restored) inner store.
func TestSnapStoreAbort(t *testing.T) {
	tx, err := NewTxStore(NewMemStore(64), TxOptions{WALPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSnapStore(tx, 0)
	defer s.Close()
	ps := s.PageSize()

	id, _ := s.Alloc()
	if err := s.Write(id, fill(ps, 1)); err != nil {
		t.Fatal(err)
	}
	e1, err := s.Commit()
	if err != nil {
		t.Fatal(err)
	}

	pin := s.Pin()
	if err := tx.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(id, fill(ps, 50)); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(id); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	s.Abort()

	if got := s.Epoch(); got != e1 {
		t.Fatalf("epoch after abort = %d, want %d", got, e1)
	}
	st := s.SnapStats()
	if st.Versions != 0 || st.PendingFrees != 0 {
		t.Fatalf("abort left bookkeeping: %+v", st)
	}
	buf := make([]byte, ps)
	if err := s.View(pin).Read(id, buf); err != nil || buf[0] != 1 {
		t.Fatalf("post-abort view read = (%v, %d), want 1", err, buf[0])
	}
	if err := s.Read(id, buf); err != nil || buf[0] != 1 {
		t.Fatalf("post-abort writer read = (%v, %d), want 1", err, buf[0])
	}
	s.Unpin(pin)
}

// TestSnapStorePagesAccounting checks Pages() excludes deferred frees.
func TestSnapStorePagesAccounting(t *testing.T) {
	s := NewSnapStore(NewMemStore(64), 0)
	defer s.Close()
	a, _ := s.Alloc()
	if _, err := s.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	pin := s.Pin() // blocks the free from reaching the inner store
	if err := s.Free(a); err != nil {
		t.Fatal(err)
	}
	if got := s.Pages(); got != 1 {
		t.Fatalf("Pages with deferred free = %d, want 1", got)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := s.Pages(); got != 1 {
		t.Fatalf("Pages after commit (still pinned) = %d, want 1", got)
	}
	s.Unpin(pin)
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := s.Pages(); got != 1 {
		t.Fatalf("Pages after GC = %d, want 1", got)
	}
	// Double free fails like any store.
	if err := s.Free(a); !errors.Is(err, ErrBadPage) {
		t.Fatalf("double free: want ErrBadPage, got %v", err)
	}
}

// TestSnapStoreConcurrentReaders hammers one writer against many readers
// under the race detector: each reader repeatedly pins an epoch, reads a
// group of pages that the writer rewrites together, and asserts the group
// is internally consistent (all pages carry the same batch stamp) — the
// multi-page torn-read case a bare store would fail.
func TestSnapStoreConcurrentReaders(t *testing.T) {
	s := NewSnapStore(NewMemStore(64), 8)
	defer s.Close()
	ps := s.PageSize()

	const npages = 6
	ids := make([]PageID, npages)
	for i := range ids {
		id, err := s.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		if err := s.Write(id, fill(ps, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	const (
		readers = 4
		rounds  = 300
	)
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)
	stop := make(chan struct{})

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, ps)
			var lastEpoch uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				pin := s.Pin()
				if pin < lastEpoch {
					errs <- fmt.Errorf("epoch went backwards: %d after %d", pin, lastEpoch)
					s.Unpin(pin)
					return
				}
				lastEpoch = pin
				v := s.View(pin)
				var stamp byte
				for i, id := range ids {
					if err := v.Read(id, buf); err != nil {
						errs <- fmt.Errorf("read page %d: %w", id, err)
						s.Unpin(pin)
						return
					}
					if i == 0 {
						stamp = buf[0]
					} else if buf[0] != stamp {
						errs <- fmt.Errorf("torn snapshot at epoch %d: page %d has stamp %d, first page %d", pin, id, buf[0], stamp)
						s.Unpin(pin)
						return
					}
				}
				s.Unpin(pin)
			}
		}()
	}

	// Single writer: rewrite all pages with a new stamp each round.
	for round := 1; round <= rounds; round++ {
		stamp := byte(round % 251)
		for _, id := range ids {
			if err := s.Write(id, fill(ps, stamp)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// With every pin released and a final commit, all version memory is
	// reclaimed.
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if st := s.SnapStats(); st.Versions != 0 || st.Pins != 0 {
		t.Fatalf("leftover snapshot state: %+v", st)
	}
}
