package eio

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// These tests pin the SnapStore∘ShardedPool composition — the non-durable
// file-cache stack rsserve runs when -durable=false. The interesting
// interactions are between snapshot version capture (which reads the
// pre-image through the pool, possibly from a dirty frame that never
// reached the backing store) and the pool's write-back/eviction machinery,
// plus deferred frees flowing through Pool.Free's drop-without-writeback
// path.

// newSnapShardStack builds SnapStore(ShardedPool(MemStore)) with a pool
// small enough that a handful of pages forces evictions.
func newSnapShardStack(poolCap, shards int) (*SnapStore, *ShardedPool, *MemStore) {
	mem := NewMemStore(64)
	sp := NewShardedPool(mem, poolCap, shards)
	return NewSnapStore(sp, 8), sp, mem
}

func genPage(ps int, tag byte, gen byte) []byte {
	b := bytes.Repeat([]byte{tag}, ps)
	b[0] = gen
	return b
}

// TestSnapShardPoolIsolation checks that a pinned epoch keeps reading its
// page images while the writer overwrites them through the sharded pool —
// including across an explicit pool Flush, which moves dirty frames to the
// backing store underneath the version chains.
func TestSnapShardPoolIsolation(t *testing.T) {
	snap, sp, _ := newSnapShardStack(4, 2)
	defer snap.Close()
	ps := snap.PageSize()

	// More pages than pool frames, spread over both shards.
	const n = 10
	ids := make([]PageID, n)
	for i := range ids {
		id, err := snap.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		if err := snap.Write(id, genPage(ps, byte(i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := snap.Commit(); err != nil {
		t.Fatal(err)
	}

	epoch := snap.Pin()
	view := snap.View(epoch)

	// Overwrite every page; capture must fetch generation-1 images through
	// the pool (some resident, some already evicted to backing).
	for i, id := range ids {
		if err := snap.Write(id, genPage(ps, byte(i), 2)); err != nil {
			t.Fatal(err)
		}
	}
	// Flush mid-batch: write-back of generation-2 frames must not disturb
	// the captured generation-1 versions.
	if err := sp.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := snap.Commit(); err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, ps)
	for i, id := range ids {
		if err := view.Read(id, buf); err != nil {
			t.Fatalf("view read page %d: %v", id, err)
		}
		if !bytes.Equal(buf, genPage(ps, byte(i), 1)) {
			t.Fatalf("pinned view of page %d saw generation %d, want 1", id, buf[0])
		}
		if err := snap.Read(id, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, genPage(ps, byte(i), 2)) {
			t.Fatalf("writer read of page %d saw generation %d, want 2", id, buf[0])
		}
	}
	snap.Unpin(epoch)
}

// TestSnapShardPoolDeferredFree checks that a free deferred behind a pin
// flows through the pool (dropping any resident frame) only after the pin
// drains, and that the composed stack then scrubs clean via the delegated
// LivePageIDs.
func TestSnapShardPoolDeferredFree(t *testing.T) {
	snap, _, mem := newSnapShardStack(2, 2)
	defer snap.Close()
	ps := snap.PageSize()

	keep, err := snap.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	victim, err := snap.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Write(keep, genPage(ps, 0xAA, 1)); err != nil {
		t.Fatal(err)
	}
	if err := snap.Write(victim, genPage(ps, 0xBB, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := snap.Commit(); err != nil {
		t.Fatal(err)
	}

	epoch := snap.Pin()
	view := snap.View(epoch)
	if err := snap.Free(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := snap.Commit(); err != nil {
		t.Fatal(err)
	}

	// The pin holds the free back: the view still reads the page, the
	// backing store still owns it.
	buf := make([]byte, ps)
	if err := view.Read(victim, buf); err != nil {
		t.Fatalf("pinned view lost deferred-freed page: %v", err)
	}
	if !bytes.Equal(buf, genPage(ps, 0xBB, 1)) {
		t.Fatal("pinned view of deferred-freed page corrupted")
	}
	if err := snap.Read(victim, buf); !errors.Is(err, ErrBadPage) {
		t.Fatalf("writer read of freed page: want ErrBadPage, got %v", err)
	}
	if got := mem.Pages(); got != 2 {
		t.Fatalf("backing freed page under a pin: %d pages, want 2", got)
	}

	snap.Unpin(epoch)
	if _, err := snap.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := mem.Pages(); got != 1 {
		t.Fatalf("deferred free never applied: backing has %d pages, want 1", got)
	}

	// Quiescent now: scrubbing through the full composition must agree
	// with the backing store and report no leaks.
	rep, err := FindLeaks(snap, []PageID{keep})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Allocated != 1 || len(rep.Leaked) != 0 {
		t.Fatalf("scrub through snap∘shardpool: allocated=%d leaked=%v, want 1 and none", rep.Allocated, rep.Leaked)
	}
}

// TestSnapShardPoolLivePageIDsDelegation checks the PageLister delegation
// chain: SnapStore → ShardedPool → backing, with dirty unflushed frames
// (allocation state lives in the backing store, so no flush is needed),
// and the error path when the backing store cannot enumerate.
func TestSnapShardPoolLivePageIDsDelegation(t *testing.T) {
	snap, _, mem := newSnapShardStack(2, 2)
	defer snap.Close()
	var ids []PageID
	for i := 0; i < 5; i++ {
		id, err := snap.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	got, err := snap.LivePageIDs()
	if err != nil {
		t.Fatal(err)
	}
	want, err := mem.LivePageIDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ids) || len(got) != len(want) {
		t.Fatalf("LivePageIDs through composition: %d ids, backing %d, allocated %d", len(got), len(want), len(ids))
	}

	// A backing store without PageLister surfaces a clear error, not a
	// panic, through both layers.
	blind := NewSnapStore(NewShardedPool(bareStore{NewMemStore(64)}, 2, 2), 0)
	defer blind.Close()
	if _, err := blind.LivePageIDs(); err == nil {
		t.Fatal("LivePageIDs over non-enumerable backing: want error, got nil")
	}
}

// bareStore wraps a store without forwarding LivePageIDs, so the wrapped
// value is a Store but not a PageLister (embedding would promote the
// method; explicit delegation avoids that).
type bareStore struct{ inner Store }

func (b bareStore) PageSize() int                   { return b.inner.PageSize() }
func (b bareStore) Alloc() (PageID, error)          { return b.inner.Alloc() }
func (b bareStore) Free(id PageID) error            { return b.inner.Free(id) }
func (b bareStore) Read(id PageID, p []byte) error  { return b.inner.Read(id, p) }
func (b bareStore) Write(id PageID, p []byte) error { return b.inner.Write(id, p) }
func (b bareStore) Stats() Stats                    { return b.inner.Stats() }
func (b bareStore) ResetStats()                     { b.inner.ResetStats() }
func (b bareStore) Pages() int                      { return b.inner.Pages() }
func (b bareStore) Close() error                    { return b.inner.Close() }

// TestSnapShardPoolConcurrentReaders runs pinned readers against a writer
// that keeps overwriting and committing through the sharded pool — the
// raw-page analogue of the serving loop. Every reader must see a fully
// consistent generation for its pinned epoch on every page.
func TestSnapShardPoolConcurrentReaders(t *testing.T) {
	snap, _, _ := newSnapShardStack(4, 4)
	defer snap.Close()
	ps := snap.PageSize()

	const n = 16
	ids := make([]PageID, n)
	for i := range ids {
		id, err := snap.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		if err := snap.Write(id, genPage(ps, byte(i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := snap.Commit(); err != nil {
		t.Fatal(err)
	}

	const rounds = 40
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			buf := make([]byte, ps)
			for k := 0; k < rounds; k++ {
				epoch := snap.Pin()
				view := snap.View(epoch)
				// Within one pinned epoch, every page must carry the same
				// generation byte.
				var gen byte
				ok := true
				for i, id := range ids {
					if err := view.Read(id, buf); err != nil {
						errc <- fmt.Errorf("reader: page %d: %w", id, err)
						ok = false
						break
					}
					if buf[1] != byte(i) {
						errc <- fmt.Errorf("reader: page %d tag mismatch", id)
						ok = false
						break
					}
					if i == 0 {
						gen = buf[0]
					} else if buf[0] != gen {
						errc <- fmt.Errorf("reader: epoch %d mixed generations %d and %d", epoch, gen, buf[0])
						ok = false
						break
					}
				}
				snap.Unpin(epoch)
				if !ok {
					return
				}
			}
		}(r)
	}

	for g := byte(2); g <= rounds; g++ {
		for i, id := range ids {
			b := genPage(ps, byte(i), g)
			if err := snap.Write(id, b); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := snap.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
