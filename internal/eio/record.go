package eio

import (
	"encoding/binary"
	"fmt"
)

// RecordStore stores variable-length byte records on a Store as chains of
// pages. A record that needs k pages costs exactly k I/Os to read and Θ(k)
// to write, matching the paper's accounting for logical nodes that occupy
// "O(1) catalog blocks" or "O(B) index blocks".
//
// Chain layout: every page starts with an 8-byte next-page id; the first
// page additionally carries the record length as 8 bytes. The record id is
// the id of its first page.
type RecordStore struct {
	s Store
}

const (
	chainNextOff  = 0
	chainHdrFirst = 16 // next + length
	chainHdrRest  = 8  // next only
)

// NewRecordStore returns a RecordStore over s.
func NewRecordStore(s Store) *RecordStore { return &RecordStore{s: s} }

// Store returns the underlying page store.
func (r *RecordStore) Store() Store { return r.s }

// PagesFor returns the number of pages a record of n bytes occupies.
func (r *RecordStore) PagesFor(n int) int {
	ps := r.s.PageSize()
	first := ps - chainHdrFirst
	if n <= first {
		return 1
	}
	rest := ps - chainHdrRest
	return 1 + (n-first+rest-1)/rest
}

// Put writes data as a new record and returns its id.
func (r *RecordStore) Put(data []byte) (PageID, error) {
	return r.write(NilPage, data)
}

// Update rewrites the record id with data, reusing the existing chain's
// pages and allocating or freeing pages as the length changes. The record
// keeps its id.
func (r *RecordStore) Update(id PageID, data []byte) error {
	if id == NilPage {
		return fmt.Errorf("eio: update of nil record: %w", ErrBadRecord)
	}
	_, err := r.write(id, data)
	return err
}

// write stores data in a chain starting at reuse (NilPage to allocate a
// fresh chain) and returns the chain head.
//
// The operation order is chosen for failure atomicity of the chain
// structure: tail pages are written first, the head page — which commits
// the new length and the link into the rest of the chain — second, and
// surplus pages of a shrinking record are freed only after the head no
// longer references them. An I/O failure at any point therefore leaves a
// walkable chain (never a link to a freed page); freshly allocated pages
// are released best-effort so a failed grow does not leak.
func (r *RecordStore) write(reuse PageID, data []byte) (PageID, error) {
	ps := r.s.PageSize()
	buf := make([]byte, ps)

	// Collect reusable pages from the old chain.
	var reusable []PageID
	if reuse != NilPage {
		var err error
		reusable, err = r.chain(reuse)
		if err != nil {
			return NilPage, err
		}
	}
	need := r.PagesFor(len(data))
	var surplus []PageID
	pages := reusable
	if len(pages) > need {
		surplus = pages[need:]
		pages = pages[:need]
	}
	var fresh []PageID
	for len(pages) < need {
		id, err := r.s.Alloc()
		if err != nil {
			freeAll(r.s, fresh)
			return NilPage, fmt.Errorf("eio: grow record: %w", err)
		}
		fresh = append(fresh, id)
		pages = append(pages, id)
	}

	// Byte ranges: the first page holds firstCap bytes after its 16-byte
	// header, every later page restCap bytes after its 8-byte header.
	firstCap := ps - chainHdrFirst
	restCap := ps - chainHdrRest
	writePage := func(i int) error {
		clear(buf)
		next := NilPage
		if i+1 < need {
			next = pages[i+1]
		}
		binary.LittleEndian.PutUint64(buf[chainNextOff:], uint64(next))
		var chunk []byte
		if i == 0 {
			binary.LittleEndian.PutUint64(buf[8:], uint64(len(data)))
			chunk = data[:min(firstCap, len(data))]
			copy(buf[chainHdrFirst:], chunk)
		} else {
			start := firstCap + (i-1)*restCap
			chunk = data[start:min(start+restCap, len(data))]
			copy(buf[chainHdrRest:], chunk)
		}
		if err := r.s.Write(pages[i], buf); err != nil {
			return fmt.Errorf("eio: write record page: %w", err)
		}
		return nil
	}
	for i := 1; i < need; i++ {
		if err := writePage(i); err != nil {
			freeAll(r.s, fresh)
			return NilPage, err
		}
	}
	if err := writePage(0); err != nil {
		freeAll(r.s, fresh)
		return NilPage, err
	}
	for _, id := range surplus {
		if err := r.s.Free(id); err != nil {
			return NilPage, fmt.Errorf("eio: shrink record: %w", err)
		}
	}
	return pages[0], nil
}

// freeAll releases ids best-effort (used for cleanup on a failed write,
// where the original error is the one worth reporting).
func freeAll(s Store, ids []PageID) {
	for _, id := range ids {
		_ = s.Free(id)
	}
}

// Get reads the record id in full.
func (r *RecordStore) Get(id PageID) ([]byte, error) {
	if id == NilPage {
		return nil, fmt.Errorf("eio: get of nil record: %w", ErrBadRecord)
	}
	ps := r.s.PageSize()
	buf := make([]byte, ps)
	if err := r.s.Read(id, buf); err != nil {
		return nil, err
	}
	next := PageID(binary.LittleEndian.Uint64(buf[chainNextOff:]))
	length := int(binary.LittleEndian.Uint64(buf[8:]))
	if length < 0 || length > 1<<40 {
		return nil, fmt.Errorf("eio: record %d length %d: %w", id, length, ErrBadRecord)
	}
	out := make([]byte, 0, length)
	out = append(out, buf[chainHdrFirst:min(ps, chainHdrFirst+length)]...)
	for next != NilPage && len(out) < length {
		if err := r.s.Read(next, buf); err != nil {
			return nil, err
		}
		next = PageID(binary.LittleEndian.Uint64(buf[chainNextOff:]))
		out = append(out, buf[chainHdrRest:min(ps, chainHdrRest+length-len(out))]...)
	}
	if len(out) != length {
		return nil, fmt.Errorf("eio: record %d truncated (%d of %d bytes): %w", id, len(out), length, ErrBadRecord)
	}
	return out, nil
}

// Delete frees every page of the record id.
func (r *RecordStore) Delete(id PageID) error {
	if id == NilPage {
		return nil
	}
	pages, err := r.chain(id)
	if err != nil {
		return err
	}
	for _, p := range pages {
		if err := r.s.Free(p); err != nil {
			return err
		}
	}
	return nil
}

// Chain returns the page ids occupied by record id, head first. It is the
// exact reachability primitive for Scrub: a structure's reachable page set
// is the union of the chains of every record it can name.
func (r *RecordStore) Chain(id PageID) ([]PageID, error) { return r.chain(id) }

// chain returns the page ids of record id in order.
func (r *RecordStore) chain(id PageID) ([]PageID, error) {
	ps := r.s.PageSize()
	buf := make([]byte, ps)
	var pages []PageID
	for cur := id; cur != NilPage; {
		if err := r.s.Read(cur, buf); err != nil {
			return nil, err
		}
		pages = append(pages, cur)
		cur = PageID(binary.LittleEndian.Uint64(buf[chainNextOff:]))
		if len(pages) > 1<<24 {
			return nil, fmt.Errorf("eio: record %d: cycle in chain: %w", id, ErrBadRecord)
		}
	}
	return pages, nil
}
