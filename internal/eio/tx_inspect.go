package eio

import "fmt"

// This file is the offline, read-only view of a TxStore layout: what the
// rsinspect wal subcommand prints and what replication debugging leans on.
// Nothing here mutates the store.

// AnchorInfo describes one decoded anchor slot.
type AnchorInfo struct {
	Page  PageID `json:"page"`
	Valid bool   `json:"valid"`
	Seq   uint64 `json:"seq,omitempty"`
	LSN   uint64 `json:"lsn,omitempty"`
}

// WALRecordInfo describes the redo record currently occupying the WAL
// region. TxStore keeps exactly one record (each commit overwrites the
// region), so "the WAL" is this record plus the two anchors that interpret
// it.
type WALRecordInfo struct {
	// Valid reports whether the region parses as a checksummed record.
	Valid bool `json:"valid"`
	// LSN is the record's log sequence number (0 when invalid).
	LSN uint64 `json:"lsn"`
	// Pages is the number of page images the record carries.
	Pages int `json:"pages"`
	// Bytes is the encoded record length including header and CRC.
	Bytes int `json:"bytes"`
	// PageIDs lists the target page id of each image, in apply order.
	PageIDs []PageID `json:"page_ids,omitempty"`
	// State classifies the record against the winning anchor:
	// "applied" (lsn ≤ anchor LSN — already replayed, kept as history),
	// "committed-unapplied" (lsn = anchor+1 — OpenTxStore would redo it),
	// "future" (lsn > anchor+1 — impossible in a healthy file),
	// "torn" (checksum or parse failure — a commit died before its commit
	// point) or "empty" (zeroed region of a store that never committed).
	State string `json:"state"`
	// TornPages counts WAL-region pages that failed their page checksum.
	TornPages int `json:"torn_pages"`
}

// TxLayerInfo is the full decoded transactional layer of a store.
type TxLayerInfo struct {
	Dir      PageID        `json:"dir"`
	WALPages []PageID      `json:"wal_pages"`
	Capacity int           `json:"capacity"` // max page images per record
	Anchors  [2]AnchorInfo `json:"anchors"`
	// Applied is the winning anchor's LSN — the durable position of the
	// store, and the position a log-shipping stream resumes from.
	Applied uint64 `json:"applied"`
	Record  WALRecordInfo `json:"record"`
}

// InspectTxLayer reads and decodes the transactional layer rooted at dir
// (the value TxStore.Anchor returned, persisted in the serving manifest)
// without modifying anything. It works on crashed files: torn anchors and
// WAL pages are reported, not repaired.
func InspectTxLayer(inner Store, dir PageID) (TxLayerInfo, error) {
	var info TxLayerInfo
	info.Dir = dir
	t := &TxStore{inner: inner, ps: inner.PageSize(), dir: dir}
	rs := NewRecordStore(inner)
	raw, err := rs.Get(dir)
	if err != nil {
		return info, fmt.Errorf("eio: inspect: read directory %d: %w", dir, err)
	}
	if err := t.decodeDir(raw); err != nil {
		return info, fmt.Errorf("eio: inspect: %w", err)
	}
	info.WALPages = t.walIDs
	info.Capacity = maxTxImages(t.ps, len(t.walIDs))

	buf := make([]byte, t.ps)
	best := -1
	for i := 0; i < 2; i++ {
		info.Anchors[i].Page = t.anchors[i]
		if err := inner.Read(t.anchors[i], buf); err != nil {
			continue
		}
		seq, lsn, err := decodeAnchor(buf)
		if err != nil {
			continue
		}
		info.Anchors[i] = AnchorInfo{Page: t.anchors[i], Valid: true, Seq: seq, LSN: lsn}
		if best < 0 || seq > info.Anchors[best].Seq {
			best = i
		}
	}
	if best >= 0 {
		info.Applied = info.Anchors[best].LSN
	}

	wal := make([]byte, 0, len(t.walIDs)*t.ps)
	empty := true
	for _, id := range t.walIDs {
		if err := inner.Read(id, buf); err != nil {
			info.Record.TornPages++
			wal = append(wal, make([]byte, t.ps)...)
			continue
		}
		for _, b := range buf[:t.ps] {
			if b != 0 {
				empty = false
				break
			}
		}
		wal = append(wal, buf[:t.ps]...)
	}

	lsn, writes, err := decodeWALRecord(wal, t.ps)
	switch {
	case err == nil:
		info.Record.Valid = true
		info.Record.LSN = lsn
		info.Record.Pages = len(writes)
		info.Record.Bytes = walHdrSize + len(writes)*(8+t.ps) + walCRCSize
		for _, w := range writes {
			info.Record.PageIDs = append(info.Record.PageIDs, w.id)
		}
		switch {
		case best < 0:
			info.Record.State = "committed-unapplied" // no anchor to compare against
		case lsn <= info.Applied:
			info.Record.State = "applied"
		case lsn == info.Applied+1:
			info.Record.State = "committed-unapplied"
		default:
			info.Record.State = "future"
		}
	case empty && info.Record.TornPages == 0:
		info.Record.State = "empty"
	default:
		info.Record.State = "torn"
	}
	return info, nil
}
