package eio

import (
	"sync"
	"testing"
)

// collectSink is a minimal test sink that records every event.
type collectSink struct {
	mu     sync.Mutex
	events []TraceEvent
}

func (c *collectSink) Emit(e TraceEvent) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

func (c *collectSink) snapshot() []TraceEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]TraceEvent(nil), c.events...)
}

func TestTraceStoreEmitsTypedEvents(t *testing.T) {
	ts := NewTraceStore(NewMemStore(128))
	defer ts.Close()
	sink := &collectSink{}
	ts.SetSink(sink)

	id, err := ts.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	buf[0] = 0xAB
	ts.SetScope("insert")
	if err := ts.Write(id, buf); err != nil {
		t.Fatal(err)
	}
	ts.SetScope("")
	if err := ts.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := ts.Free(id); err != nil {
		t.Fatal(err)
	}

	ev := sink.snapshot()
	if len(ev) != 4 {
		t.Fatalf("got %d events, want 4", len(ev))
	}
	wantOps := []Op{OpAlloc, OpWrite, OpRead, OpFree}
	for i, e := range ev {
		if e.Op != wantOps[i] {
			t.Errorf("event %d: op %v, want %v", i, e.Op, wantOps[i])
		}
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d: seq %d, want %d", i, e.Seq, i+1)
		}
		if e.Page != id {
			t.Errorf("event %d: page %d, want %d", i, e.Page, id)
		}
		if e.Err {
			t.Errorf("event %d: unexpected Err", i)
		}
	}
	if ev[1].Scope != "insert" {
		t.Errorf("write scope %q, want %q", ev[1].Scope, "insert")
	}
	if ev[2].Scope != "" {
		t.Errorf("read scope %q, want empty", ev[2].Scope)
	}
	if ev[1].Bytes != 128 || ev[2].Bytes != 128 {
		t.Errorf("read/write bytes %d/%d, want 128/128", ev[2].Bytes, ev[1].Bytes)
	}
	if ev[0].Bytes != 0 || ev[3].Bytes != 0 {
		t.Errorf("alloc/free bytes %d/%d, want 0/0", ev[0].Bytes, ev[3].Bytes)
	}
}

func TestTraceStoreErrorEventsAndDetach(t *testing.T) {
	ts := NewTraceStore(NewMemStore(128))
	defer ts.Close()
	sink := &collectSink{}
	ts.SetSink(sink)

	// Reading an unallocated page fails and the event records it.
	buf := make([]byte, 128)
	if err := ts.Read(PageID(99), buf); err == nil {
		t.Fatal("read of unallocated page succeeded")
	}
	ev := sink.snapshot()
	if len(ev) != 1 || !ev[0].Err {
		t.Fatalf("events %v, want one with Err=true", ev)
	}

	// After detaching, operations emit nothing.
	ts.SetSink(nil)
	if ts.Sink() != nil {
		t.Fatal("sink still attached after SetSink(nil)")
	}
	if _, err := ts.Alloc(); err != nil {
		t.Fatal(err)
	}
	if got := len(sink.snapshot()); got != 1 {
		t.Fatalf("detached store emitted %d extra events", got-1)
	}
}

func TestTraceStoreDelegatesStats(t *testing.T) {
	inner := NewMemStore(128)
	ts := NewTraceStore(inner)
	defer ts.Close()
	ts.SetSink(&collectSink{})
	id, err := ts.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	if err := ts.Write(id, buf); err != nil {
		t.Fatal(err)
	}
	if got, want := ts.Stats(), inner.Stats(); got != want {
		t.Fatalf("Stats %v != inner %v", got, want)
	}
	if ts.Stats().Writes != 1 || ts.Stats().Allocs != 1 {
		t.Fatalf("unexpected stats %v", ts.Stats())
	}
	ts.ResetStats()
	if ts.Stats() != (Stats{}) {
		t.Fatalf("stats after reset: %v", ts.Stats())
	}
	if ts.Pages() != inner.Pages() {
		t.Fatalf("Pages %d != inner %d", ts.Pages(), inner.Pages())
	}
}

// BenchmarkMemStoreRead vs BenchmarkTraceStoreNilSink demonstrates the
// acceptance criterion that an attached-but-silent TraceStore is near-free:
// the nil-sink path is one atomic load on top of the inner call, with no
// clock reads and no allocation.
func BenchmarkMemStoreRead(b *testing.B) {
	s := NewMemStore(1024)
	id, _ := s.Alloc()
	buf := make([]byte, 1024)
	_ = s.Write(id, buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Read(id, buf)
	}
}

func BenchmarkTraceStoreNilSink(b *testing.B) {
	ts := NewTraceStore(NewMemStore(1024))
	id, _ := ts.Alloc()
	buf := make([]byte, 1024)
	_ = ts.Write(id, buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ts.Read(id, buf)
	}
}

func BenchmarkTraceStoreDiscardSink(b *testing.B) {
	ts := NewTraceStore(NewMemStore(1024))
	ts.SetSink(discardSink{})
	id, _ := ts.Alloc()
	buf := make([]byte, 1024)
	_ = ts.Write(id, buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ts.Read(id, buf)
	}
}

type discardSink struct{}

func (discardSink) Emit(TraceEvent) {}
