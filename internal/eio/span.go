package eio

import "rangesearch/internal/trace"

// SpanSink counts traced block I/O into one request span. It is the
// scoped sink the serving stack hangs off a TraceStore around exactly
// the store operations that belong to a single RPC: the group-commit
// leader attaches one around each traced op's apply, and traced
// queries attach one to a private per-view TraceStore. Events are
// folded straight into the span's atomic counters — nothing is
// retained per event, so attaching one costs four atomic adds per I/O
// at most.
//
// Failed operations are still counted: an errored read hit the block
// layer all the same, and the paper's I/O accounting (and
// obs.Instrumented, which counts via Stats deltas) does not subtract
// failures either.
type SpanSink struct{ sp *trace.Span }

var _ TraceSink = (*SpanSink)(nil)

// NewSpanSink returns a sink that attributes events to sp.
func NewSpanSink(sp *trace.Span) *SpanSink { return &SpanSink{sp: sp} }

// Emit implements TraceSink.
func (s *SpanSink) Emit(e TraceEvent) {
	switch e.Op {
	case OpRead:
		s.sp.AddIO(1, 0, 0, 0)
	case OpWrite:
		s.sp.AddIO(0, 1, 0, 0)
	case OpAlloc:
		s.sp.AddIO(0, 0, 1, 0)
	case OpFree:
		s.sp.AddIO(0, 0, 0, 1)
	}
}
