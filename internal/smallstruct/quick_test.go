package smallstruct

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"rangesearch/internal/eio"
	"rangesearch/internal/geom"
)

// Property: an arbitrary operation sequence keeps the structure equal to a
// set under 3-sided queries, MaxY, Len and Contains — across rebuilds.
func TestQuickOpSequence(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 50,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			vals[0] = reflect.ValueOf(rng.Int63())
			vals[1] = reflect.ValueOf(50 + rng.Intn(400))
			vals[2] = reflect.ValueOf(2 + rng.Intn(4)) // alpha
		},
	}
	err := quick.Check(func(seed int64, ops, alpha int) bool {
		rng := rand.New(rand.NewSource(seed))
		store := eio.NewMemStore(128) // B = 8
		s, err := Create(store, alpha, nil)
		if err != nil {
			return false
		}
		model := map[geom.Point]bool{}
		for i := 0; i < ops; i++ {
			p := geom.Point{X: rng.Int63n(48), Y: rng.Int63n(48)}
			if rng.Intn(3) != 0 {
				err := s.Insert(p)
				if model[p] {
					if !errors.Is(err, ErrDuplicate) {
						return false
					}
				} else if err != nil {
					return false
				}
				model[p] = true
			} else {
				found, err := s.Delete(p)
				if err != nil || found != model[p] {
					return false
				}
				delete(model, p)
			}
		}
		n, err := s.Len()
		if err != nil || n != len(model) {
			return false
		}
		for trial := 0; trial < 6; trial++ {
			a := rng.Int63n(50)
			b := a + rng.Int63n(50)
			c := rng.Int63n(50)
			q := geom.Query3{XLo: a, XHi: b, YLo: c}
			got, err := s.Query3(nil, q)
			if err != nil {
				return false
			}
			seen := map[geom.Point]bool{}
			for _, p := range got {
				if seen[p] || !model[p] || !q.Contains(p) {
					return false
				}
				seen[p] = true
			}
			for p := range model {
				if q.Contains(p) && !seen[p] {
					return false
				}
			}
		}
		top, ok, err := s.MaxY()
		if err != nil {
			return false
		}
		if len(model) == 0 {
			return !ok
		}
		if !ok || !model[top] {
			return false
		}
		for p := range model {
			if top.YLess(p) {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}
