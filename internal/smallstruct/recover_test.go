package smallstruct_test

import (
	"fmt"
	"strings"
	"testing"

	"rangesearch/internal/eio"
	"rangesearch/internal/eio/eiotest"
	"rangesearch/internal/geom"
	"rangesearch/internal/smallstruct"
)

func sweepPoints() []geom.Point {
	var pts []geom.Point
	for i := 0; i < 20; i++ {
		pts = append(pts, geom.Point{X: int64(i*29%71) + 1, Y: int64(i * 7 % 61)})
	}
	return pts
}

func smallState(st eio.Store, hdr eio.PageID) (string, error) {
	s, err := smallstruct.Open(st, hdr, 0)
	if err != nil {
		return "", err
	}
	pts, err := s.All()
	if err != nil {
		return "", err
	}
	n, err := s.Len()
	if err != nil {
		return "", err
	}
	if n != len(pts) {
		return "", fmt.Errorf("Len %d but All returned %d points", n, len(pts))
	}
	geom.SortByX(pts)
	var b strings.Builder
	for _, p := range pts {
		fmt.Fprintf(&b, "%d,%d;", p.X, p.Y)
	}
	return b.String(), nil
}

func smallReachable(st eio.Store, hdr eio.PageID) ([]eio.PageID, error) {
	s, err := smallstruct.Open(st, hdr, 0)
	if err != nil {
		return nil, err
	}
	return s.AppendAllPages(nil)
}

// TestRecoverySweep crashes small-structure updates at every mutating
// backing-store operation: a buffered insert (catalog rewrite only), a
// delete, and an insert forced through a full rebuild (every block
// rewritten), asserting before-or-after atomicity plus a leak-free scrub.
func TestRecoverySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery sweep in -short mode")
	}
	build := func(st eio.Store) (eio.PageID, error) {
		s, err := smallstruct.Create(st, 0, sweepPoints())
		if err != nil {
			return eio.NilPage, err
		}
		return s.CatalogID(), nil
	}
	eiotest.RecoverySweep(t, eiotest.RecoveryWorkload{
		Name:     "smallstruct-insert",
		PageSize: 128,
		WALPages: 256,
		Build:    build,
		Op: func(st eio.Store, hdr eio.PageID) error {
			s, err := smallstruct.Open(st, hdr, 0)
			if err != nil {
				return err
			}
			return s.Insert(geom.Point{X: 35, Y: 500})
		},
		State:     smallState,
		Reachable: smallReachable,
		MaxRuns:   50,
	})
	eiotest.RecoverySweep(t, eiotest.RecoveryWorkload{
		Name:     "smallstruct-delete",
		PageSize: 128,
		WALPages: 256,
		Build:    build,
		Op: func(st eio.Store, hdr eio.PageID) error {
			s, err := smallstruct.Open(st, hdr, 0)
			if err != nil {
				return err
			}
			found, err := s.Delete(sweepPoints()[6])
			if err == nil && !found {
				return fmt.Errorf("delete target missing")
			}
			return err
		},
		State:     smallState,
		Reachable: smallReachable,
		MaxRuns:   50,
	})
	eiotest.RecoverySweep(t, eiotest.RecoveryWorkload{
		Name:     "smallstruct-rebuild",
		PageSize: 128,
		WALPages: 256,
		Build:    build,
		Op: func(st eio.Store, hdr eio.PageID) error {
			s, err := smallstruct.Open(st, hdr, 0)
			if err != nil {
				return err
			}
			// Force the insert through a full rebuild: every block is
			// rewritten and the old ones freed inside one transaction.
			s.SetBufferCap(1)
			return s.Insert(geom.Point{X: 36, Y: 501})
		},
		State:     smallState,
		Reachable: smallReachable,
		MaxRuns:   50,
	})
}
