package smallstruct

import (
	"math/rand"
	"testing"

	"rangesearch/internal/eio"
	"rangesearch/internal/eio/eiotest"
	"rangesearch/internal/geom"
)

// TestFaultSweep fails every store operation of a create/insert/delete/
// query workload in turn and asserts the small structure surfaces the
// injected error, never panics, and stays queryable afterwards.
func TestFaultSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	pts := distinctPoints(rng, 48, 200)
	base, extra := pts[:36], pts[36:]

	eiotest.Sweep(t, eiotest.Workload{
		Name:     "smallstruct",
		PageSize: 128,
		Strict:   true,
		Run: func(st eio.Store) (func() error, error) {
			s, err := Create(st, 2, base)
			if err != nil {
				return nil, err
			}
			check := func() error {
				if _, err := s.Len(); err != nil {
					return err
				}
				_, err := s.Query3(nil, geom.Query3{XLo: 0, XHi: 200, YLo: 0})
				return err
			}
			for _, p := range extra {
				if err := s.Insert(p); err != nil {
					return check, err
				}
			}
			for _, p := range base[:10] {
				if _, err := s.Delete(p); err != nil {
					return check, err
				}
			}
			if _, err := s.Query3(nil, geom.Query3{XLo: 20, XHi: 150, YLo: 30}); err != nil {
				return check, err
			}
			if _, err := s.All(); err != nil {
				return check, err
			}
			return check, nil
		},
	})
}
