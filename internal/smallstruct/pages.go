package smallstruct

import "rangesearch/internal/eio"

// AppendAllPages appends every page the structure owns — the catalog record
// and every block page, including retired and non-initial blocks that All()
// never visits — to dst and returns the extended slice. It is the
// structure's contribution to the reachability set consumed by
// eio.FindLeaks and eio.Scrub.
func (s *Struct) AppendAllPages(dst []eio.PageID) ([]eio.PageID, error) {
	chain, err := s.rs.Chain(s.catalog)
	if err != nil {
		return nil, err
	}
	dst = append(dst, chain...)
	cat, err := s.loadCatalog()
	if err != nil {
		return nil, err
	}
	for i := range cat.blocks {
		dst = append(dst, cat.blocks[i].page)
	}
	return dst, nil
}
