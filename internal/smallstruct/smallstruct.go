// Package smallstruct implements the Θ(B²)-point dynamic 3-sided structure
// of Lemma 1 / Section 3.1 of Arge, Samoladas & Vitter (PODS 1999): the
// sweep-line indexing scheme of Section 2.2.1 laid out on disk blocks, with
// its block metadata (x-ranges and activity y-intervals) packed into O(1)
// "catalog" blocks.
//
// A structure over N = O(B²) points occupies O(N/B + 1) index blocks plus
// an O(1)-block catalog. A 3-sided query reads the catalog, selects the
// covering blocks from it in memory, and reads those blocks: O(t + 1) I/Os.
//
// Updates are supported in O(1) I/Os amortized, as the paper's full version
// prescribes: insertions and deletions are appended to a small buffer held
// inside the catalog record; when the buffer reaches Θ(B) entries the whole
// structure is rebuilt with the sweep-line algorithm, costing O(N/B + 1)
// I/Os — O(1) amortized per update for N = O(B²). (The paper's in-place
// O(B)-I/O construction streams with a priority queue; we rebuild through
// memory, which transfers the same O(N/B) blocks.)
//
// The structure stores a *set* of points: duplicate insertions are
// rejected. This is what its only client, the external priority search
// tree, requires — each point is stored in exactly one node's structure —
// and it keeps delete semantics unambiguous under the scheme's internal
// block-level duplication.
package smallstruct

import (
	"encoding/binary"
	"errors"
	"fmt"

	"rangesearch/internal/eio"
	"rangesearch/internal/geom"
	"rangesearch/internal/sweep"
)

// ErrDuplicate reports insertion of a point already present.
var ErrDuplicate = errors.New("smallstruct: duplicate point")

// DefaultAlpha is the sweep coalescing parameter used when 0 is passed.
const DefaultAlpha = 2

// Struct is a handle to a small structure stored on an eio.Store. The
// handle itself holds no point data; every operation reads the catalog
// record (O(1) pages) and the index blocks it needs.
type Struct struct {
	store   eio.Store
	rs      *eio.RecordStore
	b       int
	alpha   int
	bufCap  int // 0 = default B/2
	catalog eio.PageID
}

// catalogData is the decoded catalog.
type catalogData struct {
	blocks []blockMeta
	ins    []geom.Point // buffered insertions, not yet in blocks
	dels   []geom.Point // buffered deletions (tombstones on block contents)
}

type blockMeta struct {
	page      eio.PageID
	count     int32
	initial   bool
	retiredAt bool
	xlo, xhi  int64
	yact      int64
	yret      int64
	topY      int64 // max stored y (stale under tombstones; upper bound)
}

const blockMetaSize = 8 + 4 + 4 + 5*8 // page, count, flags, xlo/xhi/yact/yret/topY

// Create builds a structure over pts (which must be distinct) and writes it
// to store. alpha is the sweep coalescing parameter (0 selects
// DefaultAlpha). The block size is the store's point capacity.
func Create(store eio.Store, alpha int, pts []geom.Point) (*Struct, error) {
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	s := &Struct{
		store: store,
		rs:    eio.NewRecordStore(store),
		b:     eio.BlockCapacity(store.PageSize()),
		alpha: alpha,
	}
	if s.b < 2 {
		return nil, fmt.Errorf("smallstruct: page size %d holds fewer than 2 points", store.PageSize())
	}
	if alpha < 2 {
		return nil, fmt.Errorf("smallstruct: alpha %d < 2", alpha)
	}
	seen := make(map[geom.Point]bool, len(pts))
	for _, p := range pts {
		if seen[p] {
			return nil, fmt.Errorf("smallstruct: point %v: %w", p, ErrDuplicate)
		}
		seen[p] = true
	}
	cat, err := s.writeScheme(pts)
	if err != nil {
		return nil, err
	}
	id, err := s.rs.Put(encodeCatalog(cat))
	if err != nil {
		return nil, err
	}
	s.catalog = id
	return s, nil
}

// Open attaches to a structure previously created on store.
func Open(store eio.Store, catalog eio.PageID, alpha int) (*Struct, error) {
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	s := &Struct{
		store:   store,
		rs:      eio.NewRecordStore(store),
		b:       eio.BlockCapacity(store.PageSize()),
		alpha:   alpha,
		catalog: catalog,
	}
	// Validate eagerly so a dangling id fails here, not mid-query.
	if _, err := s.loadCatalog(); err != nil {
		return nil, err
	}
	return s, nil
}

// CatalogID returns the record id that identifies this structure on its
// store; pass it to Open to re-attach.
func (s *Struct) CatalogID() eio.PageID { return s.catalog }

// B returns the block capacity in points.
func (s *Struct) B() int { return s.b }

// bufferCap is the update-buffer size that triggers a rebuild.
func (s *Struct) bufferCap() int {
	if s.bufCap > 0 {
		return s.bufCap
	}
	return (s.b + 1) / 2
}

// SetBufferCap overrides the rebuild threshold (default B/2) for this
// handle. Smaller caps rebuild more often (cheaper queries, costlier
// updates); larger caps do the reverse — experiment E5 sweeps it. The
// setting is per-handle, not persisted.
func (s *Struct) SetBufferCap(n int) {
	if n < 1 {
		n = 1
	}
	s.bufCap = n
}

// writeScheme runs the sweep construction over pts and writes the blocks.
// It returns the new catalog contents. It never touches existing blocks:
// callers replacing a catalog must commit the new one first and free the
// old blocks afterwards (see rebuild), so a failure mid-rewrite leaves the
// committed catalog's pages intact.
func (s *Struct) writeScheme(pts []geom.Point) (*catalogData, error) {
	sch, err := sweep.Build(pts, s.b, s.alpha)
	if err != nil {
		return nil, fmt.Errorf("smallstruct: %w", err)
	}
	cat := &catalogData{}
	for i := range sch.Blocks() {
		blk := &sch.Blocks()[i]
		if len(blk.Points) == 0 {
			continue
		}
		page, err := eio.WritePointBlock(s.store, eio.NilPage, blk.Points)
		if err != nil {
			return nil, fmt.Errorf("smallstruct: write block: %w", err)
		}
		top := blk.Points[0].Y
		for _, p := range blk.Points {
			if p.Y > top {
				top = p.Y
			}
		}
		cat.blocks = append(cat.blocks, blockMeta{
			page:      page,
			count:     int32(len(blk.Points)),
			initial:   blk.Initial,
			retiredAt: blk.RetiredAt,
			xlo:       blk.XLo,
			xhi:       blk.XHi,
			yact:      blk.YAct,
			yret:      blk.YRet,
			topY:      top,
		})
	}
	return cat, nil
}

// loadCatalog reads and decodes the catalog record.
func (s *Struct) loadCatalog() (*catalogData, error) {
	raw, err := s.rs.Get(s.catalog)
	if err != nil {
		return nil, fmt.Errorf("smallstruct: load catalog: %w", err)
	}
	return decodeCatalog(raw)
}

// storeCatalog re-encodes and writes the catalog record in place.
func (s *Struct) storeCatalog(cat *catalogData) error {
	if err := s.rs.Update(s.catalog, encodeCatalog(cat)); err != nil {
		return fmt.Errorf("smallstruct: store catalog: %w", err)
	}
	return nil
}

// activeFor mirrors sweep.Block.ActiveFor on catalog metadata.
func (m *blockMeta) activeFor(c int64) bool {
	if !m.initial && c <= m.yact {
		return false
	}
	return !m.retiredAt || c <= m.yret
}

// Query3 appends to dst every live point satisfying q and returns the
// extended slice. Cost: O(1) catalog pages + O(t+1) block reads.
func (s *Struct) Query3(dst []geom.Point, q geom.Query3) ([]geom.Point, error) {
	cat, err := s.loadCatalog()
	if err != nil {
		return dst, err
	}
	return s.query3(dst, cat, q)
}

func (s *Struct) query3(dst []geom.Point, cat *catalogData, q geom.Query3) ([]geom.Point, error) {
	if q.Empty() {
		return dst, nil
	}
	dead := tombstones(cat)
	for i := range cat.blocks {
		m := &cat.blocks[i]
		if !m.activeFor(q.YLo) || m.xlo > q.XHi || m.xhi < q.XLo || q.YLo > m.topY {
			continue
		}
		pts, err := eio.ReadPointBlock(nil, s.store, m.page, int(m.count))
		if err != nil {
			return dst, fmt.Errorf("smallstruct: read block: %w", err)
		}
		for _, p := range pts {
			if q.Contains(p) && !dead[p] {
				dst = append(dst, p)
			}
		}
	}
	for _, p := range cat.ins {
		if q.Contains(p) {
			dst = append(dst, p)
		}
	}
	return dst, nil
}

// tombstones returns the buffered deletions as a set.
func tombstones(cat *catalogData) map[geom.Point]bool {
	if len(cat.dels) == 0 {
		return nil
	}
	dead := make(map[geom.Point]bool, len(cat.dels))
	for _, p := range cat.dels {
		dead[p] = true
	}
	return dead
}

// Contains reports whether p is stored (live).
func (s *Struct) Contains(p geom.Point) (bool, error) {
	got, err := s.Query3(nil, geom.Query3{XLo: p.X, XHi: p.X, YLo: p.Y})
	if err != nil {
		return false, err
	}
	for _, q := range got {
		if q == p {
			return true, nil
		}
	}
	return false, nil
}

// Insert adds p. It returns ErrDuplicate if p is already stored.
// Cost: O(1) I/Os amortized.
func (s *Struct) Insert(p geom.Point) error {
	cat, err := s.loadCatalog()
	if err != nil {
		return err
	}
	// A buffered tombstone for p cancels out (reinsertion after delete).
	for i, d := range cat.dels {
		if d == p {
			cat.dels = append(cat.dels[:i], cat.dels[i+1:]...)
			return s.storeCatalog(cat)
		}
	}
	present, err := s.query3(nil, cat, geom.Query3{XLo: p.X, XHi: p.X, YLo: p.Y})
	if err != nil {
		return err
	}
	for _, q := range present {
		if q == p {
			return fmt.Errorf("smallstruct: insert %v: %w", p, ErrDuplicate)
		}
	}
	cat.ins = append(cat.ins, p)
	if len(cat.ins)+len(cat.dels) >= s.bufferCap() {
		return s.rebuild(cat)
	}
	return s.storeCatalog(cat)
}

// Delete removes p, reporting whether it was present.
// Cost: O(1) I/Os amortized.
func (s *Struct) Delete(p geom.Point) (bool, error) {
	cat, err := s.loadCatalog()
	if err != nil {
		return false, err
	}
	// If p is still in the insert buffer, cancel it there.
	for i, q := range cat.ins {
		if q == p {
			cat.ins = append(cat.ins[:i], cat.ins[i+1:]...)
			return true, s.storeCatalog(cat)
		}
	}
	present, err := s.query3(nil, cat, geom.Query3{XLo: p.X, XHi: p.X, YLo: p.Y})
	if err != nil {
		return false, err
	}
	found := false
	for _, q := range present {
		if q == p {
			found = true
			break
		}
	}
	if !found {
		return false, nil
	}
	cat.dels = append(cat.dels, p)
	if len(cat.ins)+len(cat.dels) >= s.bufferCap() {
		return true, s.rebuild(cat)
	}
	return true, s.storeCatalog(cat)
}

// all returns the live point set: the stored base partition (the initial
// blocks of the last rebuild partition the base set exactly, so no
// deduplication is needed) minus tombstones, plus the insert buffer.
func (s *Struct) all(cat *catalogData) ([]geom.Point, error) {
	dead := tombstones(cat)
	var out []geom.Point
	for i := range cat.blocks {
		m := &cat.blocks[i]
		if !m.initial {
			continue
		}
		pts, err := eio.ReadPointBlock(nil, s.store, m.page, int(m.count))
		if err != nil {
			return nil, fmt.Errorf("smallstruct: read block: %w", err)
		}
		for _, p := range pts {
			if !dead[p] {
				out = append(out, p)
			}
		}
	}
	out = append(out, cat.ins...)
	return out, nil
}

// All returns every live point. Cost: O(n/B·α/(α−1) + 1) I/Os.
func (s *Struct) All() ([]geom.Point, error) {
	cat, err := s.loadCatalog()
	if err != nil {
		return nil, err
	}
	return s.all(cat)
}

// Len returns the number of live points (reads only the catalog, which
// records per-block counts, but must reconcile tombstones against the base
// partition; tombstone points are always base points, so Len is exact).
func (s *Struct) Len() (int, error) {
	cat, err := s.loadCatalog()
	if err != nil {
		return 0, err
	}
	n := 0
	for i := range cat.blocks {
		if cat.blocks[i].initial {
			n += int(cat.blocks[i].count)
		}
	}
	return n - len(cat.dels) + len(cat.ins), nil
}

// MaxY returns the live point with the largest y-coordinate (ties broken
// toward larger x). The boolean is false if the structure is empty.
// Cost: O(1) I/Os amortized — extra block reads are charged to the
// tombstones that caused them.
func (s *Struct) MaxY() (geom.Point, bool, error) {
	cat, err := s.loadCatalog()
	if err != nil {
		return geom.Point{}, false, err
	}
	return s.maxY(cat)
}

func (s *Struct) maxY(cat *catalogData) (geom.Point, bool, error) {
	dead := tombstones(cat)
	var best geom.Point
	found := false
	better := func(p geom.Point) bool {
		return !found || p.Y > best.Y || (p.Y == best.Y && p.X > best.X)
	}
	for _, p := range cat.ins {
		if better(p) {
			best, found = p, true
		}
	}
	// Visit blocks in decreasing topY until the bound says stop. The
	// catalog is small (O(B) entries), so selection is done in memory.
	order := make([]int, len(cat.blocks))
	for i := range order {
		order[i] = i
	}
	// Insertion-sort by topY descending (catalog is short).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && cat.blocks[order[j]].topY > cat.blocks[order[j-1]].topY; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, bi := range order {
		m := &cat.blocks[bi]
		// Strict: a block with topY == best.Y may still hold an equal-y
		// point with a larger x, which wins the tiebreak.
		if found && best.Y > m.topY {
			break
		}
		// Only blocks that can hold live points matter: a block's stored
		// points are live at threshold c only while the block is active;
		// for "current maximum" we want points live right now, i.e. at
		// every threshold — every stored non-tombstoned point is a copy of
		// a live point, so any copy is a valid answer.
		pts, err := eio.ReadPointBlock(nil, s.store, m.page, int(m.count))
		if err != nil {
			return best, found, fmt.Errorf("smallstruct: read block: %w", err)
		}
		for _, p := range pts {
			if !dead[p] && better(p) {
				best, found = p, true
			}
		}
	}
	return best, found, nil
}

// rebuild reconstructs the scheme from the live set and resets the buffer.
func (s *Struct) rebuild(cat *catalogData) error {
	pts, err := s.all(cat)
	if err != nil {
		return err
	}
	// Shadow-paging order: write the new blocks and commit the catalog
	// that references them before freeing the old blocks. A failure at any
	// point leaves a readable structure (at worst leaking the new blocks).
	ncat, err := s.writeScheme(pts)
	if err != nil {
		return err
	}
	if err := s.storeCatalog(ncat); err != nil {
		return err
	}
	for i := range cat.blocks {
		if err := s.store.Free(cat.blocks[i].page); err != nil {
			return fmt.Errorf("smallstruct: free old block: %w", err)
		}
	}
	return nil
}

// Rebuild forces an immediate rebuild (used by tests and by the priority
// search tree after bulk manipulation).
func (s *Struct) Rebuild() error {
	cat, err := s.loadCatalog()
	if err != nil {
		return err
	}
	return s.rebuild(cat)
}

// Destroy frees every page owned by the structure, including the catalog.
// The handle must not be used afterwards.
func (s *Struct) Destroy() error {
	cat, err := s.loadCatalog()
	if err != nil {
		return err
	}
	for i := range cat.blocks {
		if err := s.store.Free(cat.blocks[i].page); err != nil {
			return err
		}
	}
	return s.rs.Delete(s.catalog)
}

// Blocks returns the number of index blocks currently allocated.
func (s *Struct) Blocks() (int, error) {
	cat, err := s.loadCatalog()
	if err != nil {
		return 0, err
	}
	return len(cat.blocks), nil
}

// CatalogPages returns the number of pages the catalog record occupies —
// the "O(1) catalog blocks" of Lemma 1.
func (s *Struct) CatalogPages() (int, error) {
	raw, err := s.rs.Get(s.catalog)
	if err != nil {
		return 0, err
	}
	return s.rs.PagesFor(len(raw)), nil
}

// encodeCatalog serializes the catalog.
func encodeCatalog(cat *catalogData) []byte {
	out := make([]byte, 12+blockMetaSize*len(cat.blocks)+eio.PointSize*(len(cat.ins)+len(cat.dels)))
	binary.LittleEndian.PutUint32(out[0:], uint32(len(cat.blocks)))
	binary.LittleEndian.PutUint32(out[4:], uint32(len(cat.ins)))
	binary.LittleEndian.PutUint32(out[8:], uint32(len(cat.dels)))
	off := 12
	for i := range cat.blocks {
		m := &cat.blocks[i]
		binary.LittleEndian.PutUint64(out[off:], uint64(m.page))
		binary.LittleEndian.PutUint32(out[off+8:], uint32(m.count))
		var flags uint32
		if m.initial {
			flags |= 1
		}
		if m.retiredAt {
			flags |= 2
		}
		binary.LittleEndian.PutUint32(out[off+12:], flags)
		binary.LittleEndian.PutUint64(out[off+16:], uint64(m.xlo))
		binary.LittleEndian.PutUint64(out[off+24:], uint64(m.xhi))
		binary.LittleEndian.PutUint64(out[off+32:], uint64(m.yact))
		binary.LittleEndian.PutUint64(out[off+40:], uint64(m.yret))
		binary.LittleEndian.PutUint64(out[off+48:], uint64(m.topY))
		off += blockMetaSize
	}
	for _, p := range cat.ins {
		eio.PutPoint(out, off, p)
		off += eio.PointSize
	}
	for _, p := range cat.dels {
		eio.PutPoint(out, off, p)
		off += eio.PointSize
	}
	return out
}

// decodeCatalog is the inverse of encodeCatalog.
func decodeCatalog(raw []byte) (*catalogData, error) {
	if len(raw) < 12 {
		return nil, fmt.Errorf("smallstruct: catalog too short (%d bytes)", len(raw))
	}
	nb := int(binary.LittleEndian.Uint32(raw[0:]))
	ni := int(binary.LittleEndian.Uint32(raw[4:]))
	nd := int(binary.LittleEndian.Uint32(raw[8:]))
	want := 12 + blockMetaSize*nb + eio.PointSize*(ni+nd)
	if len(raw) != want {
		return nil, fmt.Errorf("smallstruct: catalog length %d, want %d", len(raw), want)
	}
	cat := &catalogData{
		blocks: make([]blockMeta, nb),
		ins:    make([]geom.Point, 0, ni),
		dels:   make([]geom.Point, 0, nd),
	}
	off := 12
	for i := 0; i < nb; i++ {
		m := &cat.blocks[i]
		m.page = eio.PageID(binary.LittleEndian.Uint64(raw[off:]))
		m.count = int32(binary.LittleEndian.Uint32(raw[off+8:]))
		flags := binary.LittleEndian.Uint32(raw[off+12:])
		m.initial = flags&1 != 0
		m.retiredAt = flags&2 != 0
		m.xlo = int64(binary.LittleEndian.Uint64(raw[off+16:]))
		m.xhi = int64(binary.LittleEndian.Uint64(raw[off+24:]))
		m.yact = int64(binary.LittleEndian.Uint64(raw[off+32:]))
		m.yret = int64(binary.LittleEndian.Uint64(raw[off+40:]))
		m.topY = int64(binary.LittleEndian.Uint64(raw[off+48:]))
		off += blockMetaSize
	}
	for i := 0; i < ni; i++ {
		cat.ins = append(cat.ins, eio.GetPoint(raw, off))
		off += eio.PointSize
	}
	for i := 0; i < nd; i++ {
		cat.dels = append(cat.dels, eio.GetPoint(raw, off))
		off += eio.PointSize
	}
	return cat, nil
}
