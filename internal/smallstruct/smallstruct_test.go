package smallstruct

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"rangesearch/internal/eio"
	"rangesearch/internal/geom"
)

// model is a brute-force reference implementation.
type model map[geom.Point]bool

func (m model) query3(q geom.Query3) []geom.Point {
	var out []geom.Point
	for p := range m {
		if q.Contains(p) {
			out = append(out, p)
		}
	}
	geom.SortByX(out)
	return out
}

func sorted(pts []geom.Point) []geom.Point {
	out := append([]geom.Point(nil), pts...)
	geom.SortByX(out)
	return out
}

func equalPts(a, b []geom.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func distinctPoints(rng *rand.Rand, n int, coordRange int64) []geom.Point {
	seen := make(map[geom.Point]bool)
	var pts []geom.Point
	for len(pts) < n {
		p := geom.Point{X: rng.Int63n(coordRange), Y: rng.Int63n(coordRange)}
		if !seen[p] {
			seen[p] = true
			pts = append(pts, p)
		}
	}
	return pts
}

func TestCreateQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	store := eio.NewMemStore(128) // B = 8
	pts := distinctPoints(rng, 200, 500)
	s, err := Create(store, 2, pts)
	if err != nil {
		t.Fatal(err)
	}
	m := model{}
	for _, p := range pts {
		m[p] = true
	}
	for i := 0; i < 100; i++ {
		a := rng.Int63n(500)
		b := a + rng.Int63n(500-a+1)
		c := rng.Int63n(500)
		q := geom.Query3{XLo: a, XHi: b, YLo: c}
		got, err := s.Query3(nil, q)
		if err != nil {
			t.Fatal(err)
		}
		if !equalPts(sorted(got), m.query3(q)) {
			t.Fatalf("query %v mismatch: got %d want %d", q, len(got), len(m.query3(q)))
		}
	}
}

func TestCreateRejectsDuplicates(t *testing.T) {
	store := eio.NewMemStore(128)
	_, err := Create(store, 2, []geom.Point{{X: 1, Y: 1}, {X: 1, Y: 1}})
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("expected ErrDuplicate, got %v", err)
	}
}

func TestDynamicAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	store := eio.NewMemStore(128) // B = 8
	s, err := Create(store, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := model{}
	universe := distinctPoints(rng, 300, 400)

	for op := 0; op < 3000; op++ {
		p := universe[rng.Intn(len(universe))]
		switch rng.Intn(3) {
		case 0, 1: // insert
			err := s.Insert(p)
			if m[p] {
				if !errors.Is(err, ErrDuplicate) {
					t.Fatalf("op %d: duplicate insert of %v: err=%v", op, p, err)
				}
			} else {
				if err != nil {
					t.Fatalf("op %d: insert %v: %v", op, p, err)
				}
				m[p] = true
			}
		case 2: // delete
			found, err := s.Delete(p)
			if err != nil {
				t.Fatalf("op %d: delete %v: %v", op, p, err)
			}
			if found != m[p] {
				t.Fatalf("op %d: delete %v: found=%v want %v", op, p, found, m[p])
			}
			delete(m, p)
		}
		if op%97 == 0 {
			a := rng.Int63n(400)
			b := a + rng.Int63n(400-a+1)
			c := rng.Int63n(400)
			q := geom.Query3{XLo: a, XHi: b, YLo: c}
			got, err := s.Query3(nil, q)
			if err != nil {
				t.Fatal(err)
			}
			if !equalPts(sorted(got), m.query3(q)) {
				t.Fatalf("op %d: query %v mismatch", op, q)
			}
			n, err := s.Len()
			if err != nil {
				t.Fatal(err)
			}
			if n != len(m) {
				t.Fatalf("op %d: Len=%d want %d", op, n, len(m))
			}
		}
	}
}

func TestMaxY(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	store := eio.NewMemStore(128)
	s, err := Create(store, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := model{}
	universe := distinctPoints(rng, 150, 250)
	check := func(op int) {
		got, ok, err := s.MaxY()
		if err != nil {
			t.Fatal(err)
		}
		if len(m) == 0 {
			if ok {
				t.Fatalf("op %d: MaxY found %v in empty structure", op, got)
			}
			return
		}
		var want geom.Point
		first := true
		for p := range m {
			if first || p.Y > want.Y || (p.Y == want.Y && p.X > want.X) {
				want, first = p, false
			}
		}
		if !ok || got != want {
			t.Fatalf("op %d: MaxY=%v,%v want %v", op, got, ok, want)
		}
	}
	for op := 0; op < 1500; op++ {
		p := universe[rng.Intn(len(universe))]
		if rng.Intn(3) != 0 {
			if !m[p] {
				if err := s.Insert(p); err != nil {
					t.Fatal(err)
				}
				m[p] = true
			}
		} else {
			if _, err := s.Delete(p); err != nil {
				t.Fatal(err)
			}
			delete(m, p)
		}
		if op%31 == 0 {
			check(op)
		}
	}
	check(-1)
}

func TestAllAndContains(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	store := eio.NewMemStore(128)
	pts := distinctPoints(rng, 100, 1000)
	s, err := Create(store, 2, pts)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate: delete 20, insert 10 fresh.
	for _, p := range pts[:20] {
		if _, err := s.Delete(p); err != nil {
			t.Fatal(err)
		}
	}
	fresh := distinctPoints(rng, 200, 1000)
	live := map[geom.Point]bool{}
	for _, p := range pts[20:] {
		live[p] = true
	}
	added := 0
	for _, p := range fresh {
		if live[p] {
			continue
		}
		if err := s.Insert(p); err != nil {
			t.Fatal(err)
		}
		live[p] = true
		if added++; added == 10 {
			break
		}
	}
	all, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(live) {
		t.Fatalf("All returned %d points, want %d", len(all), len(live))
	}
	for _, p := range all {
		if !live[p] {
			t.Fatalf("All returned dead point %v", p)
		}
	}
	ok, err := s.Contains(all[0])
	if err != nil || !ok {
		t.Fatalf("Contains(%v) = %v, %v", all[0], ok, err)
	}
	ok, err = s.Contains(pts[0]) // deleted
	if err != nil || ok {
		t.Fatalf("Contains(deleted) = %v, %v", ok, err)
	}
}

func TestOpenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	store := eio.NewMemStore(128)
	pts := distinctPoints(rng, 60, 100)
	s, err := Create(store, 2, pts)
	if err != nil {
		t.Fatal(err)
	}
	id := s.CatalogID()

	s2, err := Open(store, id, 2)
	if err != nil {
		t.Fatal(err)
	}
	all, err := s2.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(pts) {
		t.Fatalf("reopened structure has %d points, want %d", len(all), len(pts))
	}
	if _, err := Open(store, eio.PageID(12345), 2); err == nil {
		t.Fatal("Open of bogus catalog id succeeded")
	}
}

// TestLemma1IOBounds verifies the headline costs of Lemma 1 on a B²-point
// structure: O(B) blocks of space, O(1) catalog pages, queries in O(t+1)
// I/Os after the catalog read.
func TestLemma1IOBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	store := eio.NewMemStore(256) // B = 16
	b := 16
	n := b * b
	pts := distinctPoints(rng, n, 4096)
	s, err := Create(store, 2, pts)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := s.Blocks()
	if err != nil {
		t.Fatal(err)
	}
	if maxBlocks := 2 * (n/b + 1); blocks > maxBlocks { // r ≤ 1+1/(α−1) = 2
		t.Errorf("structure uses %d blocks for %d points (limit %d)", blocks, n, maxBlocks)
	}
	catPages, err := s.CatalogPages()
	if err != nil {
		t.Fatal(err)
	}
	// Catalog: ~56 bytes per block entry over 256-byte pages → ≈ blocks/4.
	if catPages > blocks/2+2 {
		t.Errorf("catalog occupies %d pages for %d blocks", catPages, blocks)
	}

	// Query I/O: reads = catalog pages + covered blocks ≤ cat + α²t+α+1.
	for i := 0; i < 100; i++ {
		a := rng.Int63n(4096)
		bb := a + rng.Int63n(4096-a+1)
		c := rng.Int63n(4096)
		q := geom.Query3{XLo: a, XHi: bb, YLo: c}
		store.ResetStats()
		got, err := s.Query3(nil, q)
		if err != nil {
			t.Fatal(err)
		}
		reads := int(store.Stats().Reads)
		tb := (len(got) + b - 1) / b
		if limit := catPages + 4*tb + 3; reads > limit {
			t.Errorf("query %v: %d reads for t=%d (limit %d)", q, reads, tb, limit)
		}
	}
}

// TestAmortizedUpdateCost checks the O(1) amortized update bound: total
// I/Os over many updates divided by the update count stays bounded.
func TestAmortizedUpdateCost(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	store := eio.NewMemStore(256) // B = 16
	s, err := Create(store, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	store.ResetStats()
	const ops = 2000
	universe := distinctPoints(rng, 256, 10000)
	live := map[geom.Point]bool{}
	for op := 0; op < ops; op++ {
		p := universe[rng.Intn(len(universe))]
		if !live[p] {
			if err := s.Insert(p); err != nil {
				t.Fatal(err)
			}
			live[p] = true
		} else {
			if _, err := s.Delete(p); err != nil {
				t.Fatal(err)
			}
			delete(live, p)
		}
	}
	perOp := float64(store.Stats().IOs()) / ops
	// Catalog record is several pages (n ≈ 256 = B² points → ~2 pages of
	// metadata + 1 buffer page); each op reads+writes it, plus amortized
	// rebuild traffic. A generous constant bound:
	if perOp > 40 {
		t.Errorf("amortized update cost %.1f I/Os exceeds constant bound", perOp)
	}
}

func TestDestroyFreesEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	store := eio.NewMemStore(128)
	pts := distinctPoints(rng, 120, 300)
	s, err := Create(store, 2, pts)
	if err != nil {
		t.Fatal(err)
	}
	// Churn to create buffer state.
	for _, p := range pts[:10] {
		if _, err := s.Delete(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Destroy(); err != nil {
		t.Fatal(err)
	}
	if got := store.Pages(); got != 0 {
		t.Fatalf("%d pages leaked after Destroy", got)
	}
}

func TestRebuildPreservesContents(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	store := eio.NewMemStore(128)
	pts := distinctPoints(rng, 90, 200)
	s, err := Create(store, 2, pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts[:5] {
		if _, err := s.Delete(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Rebuild(); err != nil {
		t.Fatal(err)
	}
	all, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	want := append([]geom.Point(nil), pts[5:]...)
	geom.SortByX(want)
	geom.SortByX(all)
	if !equalPts(all, want) {
		t.Fatal("rebuild changed contents")
	}
}

func TestQueryOrderIndependence(t *testing.T) {
	// Same point set inserted in different orders yields the same query
	// results (a functional-correctness property).
	rng := rand.New(rand.NewSource(55))
	pts := distinctPoints(rng, 64, 100)
	build := func(order []geom.Point) *Struct {
		store := eio.NewMemStore(128)
		s, err := Create(store, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range order {
			if err := s.Insert(p); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	s1 := build(pts)
	shuffled := append([]geom.Point(nil), pts...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	s2 := build(shuffled)
	for i := 0; i < 50; i++ {
		a := rng.Int63n(100)
		b := a + rng.Int63n(100-a+1)
		c := rng.Int63n(100)
		q := geom.Query3{XLo: a, XHi: b, YLo: c}
		g1, err := s1.Query3(nil, q)
		if err != nil {
			t.Fatal(err)
		}
		g2, err := s2.Query3(nil, q)
		if err != nil {
			t.Fatal(err)
		}
		if !equalPts(sorted(g1), sorted(g2)) {
			t.Fatalf("query %v differs across insertion orders", q)
		}
	}
}

func TestFaultPropagation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	mem := eio.NewMemStore(128)
	faulty := eio.NewFaultStore(mem)
	pts := distinctPoints(rng, 50, 100)
	s, err := Create(faulty, 2, pts)
	if err != nil {
		t.Fatal(err)
	}
	faulty.FailAfter(eio.OpRead, 2)
	_, err = s.Query3(nil, geom.Query3{XLo: 0, XHi: 100, YLo: 0})
	if !errors.Is(err, eio.ErrInjected) {
		t.Fatalf("expected injected fault to surface, got %v", err)
	}
	faulty.Disarm()
	if _, err := s.Query3(nil, geom.Query3{XLo: 0, XHi: 100, YLo: 0}); err != nil {
		t.Fatalf("query after disarm: %v", err)
	}
}

func TestSortStability(t *testing.T) {
	// Guard: sort.Search contract used elsewhere assumes x-sorted blocks.
	pts := []geom.Point{{X: 3, Y: 1}, {X: 1, Y: 2}, {X: 2, Y: 0}}
	geom.SortByX(pts)
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].Less(pts[j]) }) {
		t.Fatal("not sorted")
	}
}
