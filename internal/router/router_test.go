package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"rangesearch/internal/core"
	"rangesearch/internal/core/modeltest"
	"rangesearch/internal/eio"
	"rangesearch/internal/epst"
	"rangesearch/internal/geom"
	"rangesearch/internal/server"
)

// testNode is one in-process rsserve shard: a ThreeSided EPST under
// core.Concurrent on a loopback listener. With dir != "" the stack is
// file-backed and durable (WAL under TxStore), so write acks carry real
// LSNs and the barrier-translation path is exercised end to end.
type testNode struct {
	srv    *server.Server
	addr   string
	served chan error
}

func launchNode(dir string) (*testNode, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	var base eio.Store
	var tx *eio.TxStore
	if dir != "" {
		fs, err := eio.CreateFileStore(filepath.Join(dir, "shard.db"), 4096)
		if err != nil {
			ln.Close()
			return nil, err
		}
		tx, err = eio.NewTxStore(fs, eio.TxOptions{})
		if err != nil {
			ln.Close()
			return nil, err
		}
		base = tx
	} else {
		base = eio.NewMemStore(4096)
	}
	snap := eio.NewSnapStore(base, 0)
	idx, err := core.NewThreeSided(snap, epst.Options{})
	if err != nil {
		ln.Close()
		return nil, err
	}
	hdr := idx.HeaderID()
	if _, err := snap.Commit(); err != nil {
		ln.Close()
		return nil, err
	}
	var writer core.Index = idx
	if tx != nil {
		writer = core.NewDurable(idx, tx)
	}
	conc, err := core.NewConcurrent(writer, snap,
		func(s eio.Store) (core.Index, error) { return core.OpenThreeSided(s, hdr) },
		core.ConcurrentOptions{})
	if err != nil {
		ln.Close()
		return nil, err
	}
	srv := server.New(conc, server.Config{})
	n := &testNode{srv: srv, addr: ln.Addr().String(), served: make(chan error, 1)}
	go func() { n.served <- srv.Serve(ln) }()
	return n, nil
}

func (n *testNode) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = n.srv.Shutdown(ctx)
	<-n.served
}

// testFleet is a complete sharded deployment: N in-process shards behind
// one Router on a loopback listener.
type testFleet struct {
	rt      *Router
	addr    string
	metrics *Metrics
	nodes   []*testNode
	served  chan error
}

// launchFleet starts one shard per interval of the partition that bounds
// describes ("x<b" per bound, plus the final "rest" shard). dirFor, when
// non-nil, makes shard i durable in dirFor(i).
func launchFleet(bounds []int64, dirFor func(i int) string) (*testFleet, error) {
	f := &testFleet{served: make(chan error, 1)}
	fail := func(err error) (*testFleet, error) {
		f.stop()
		return nil, err
	}
	var spec []string
	for i := 0; i <= len(bounds); i++ {
		dir := ""
		if dirFor != nil {
			dir = dirFor(i)
		}
		n, err := launchNode(dir)
		if err != nil {
			return fail(err)
		}
		f.nodes = append(f.nodes, n)
		if i < len(bounds) {
			spec = append(spec, "x<"+strconv.FormatInt(bounds[i], 10)+"@"+n.addr)
		} else {
			spec = append(spec, "rest@"+n.addr)
		}
	}
	m, err := ParseShards(strings.Join(spec, ","))
	if err != nil {
		return fail(err)
	}
	f.metrics = NewMetrics(len(m.Shards))
	f.rt, err = New(m, Options{Metrics: f.metrics, Seed: 1})
	if err != nil {
		return fail(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	f.addr = ln.Addr().String()
	go func() { f.served <- f.rt.Serve(ln) }()
	return f, nil
}

func (f *testFleet) stop() {
	if f.rt != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		_ = f.rt.Shutdown(ctx)
		cancel()
		<-f.served
	}
	for _, n := range f.nodes {
		n.stop()
	}
}

// clientIndex adapts a wire client to core.Index, so the modeltest
// harness can replay the same op stream against a network endpoint —
// a single server or a router, interchangeably — that it replays against
// in-process structures. Rects with an open top go through QUERY3, the
// rest through QUERY4, exercising both scatter paths.
type clientIndex struct{ cl *server.Client }

func (ci *clientIndex) Insert(p geom.Point) error {
	dup, err := ci.cl.Insert(p)
	if err != nil {
		return err
	}
	if dup {
		return core.ErrDuplicate
	}
	return nil
}

func (ci *clientIndex) Delete(p geom.Point) (bool, error) { return ci.cl.Delete(p) }

func (ci *clientIndex) Query(dst []geom.Point, q geom.Rect) ([]geom.Point, error) {
	var pts []geom.Point
	var err error
	if q.YHi == geom.MaxCoord {
		pts, err = ci.cl.Query3(q.XLo, q.XHi, q.YLo)
	} else {
		pts, err = ci.cl.Query4(q)
	}
	if err != nil {
		return dst, err
	}
	return append(dst, pts...), nil
}

func (ci *clientIndex) Len() (int, error) {
	raw, err := ci.cl.Stats()
	if err != nil {
		return 0, err
	}
	var st struct {
		Len int `json:"len"`
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		return 0, err
	}
	return st.Len, nil
}

func (ci *clientIndex) Destroy() error { return nil }

// TestDifferentialRouterVsSingle replays the same seeded op streams
// against an unsharded in-process rsserve and a 3-shard router fleet via
// the modeltest harness: both must agree with the reference model on
// every query result (sorted), duplicate/found flag, and length — which
// makes them agree with each other. A divergence is ddmin-shrunk to a
// minimal sequence and persisted as a replayable artifact.
func TestDifferentialRouterVsSingle(t *testing.T) {
	const (
		nOps       = 2500
		coordRange = 4096
	)
	bounds := []int64{coordRange / 3, 2 * coordRange / 3}

	single := modeltest.Config{Name: "router-diff-single", New: func() (core.Index, func(), error) {
		n, err := launchNode("")
		if err != nil {
			return nil, nil, err
		}
		cl, err := server.Dial(n.addr, server.ClientOptions{})
		if err != nil {
			n.stop()
			return nil, nil, err
		}
		return &clientIndex{cl}, func() { cl.Close(); n.stop() }, nil
	}}
	sharded := modeltest.Config{Name: "router-diff-sharded3", New: func() (core.Index, func(), error) {
		f, err := launchFleet(bounds, nil)
		if err != nil {
			return nil, nil, err
		}
		cl, err := server.Dial(f.addr, server.ClientOptions{})
		if err != nil {
			f.stop()
			return nil, nil, err
		}
		return &clientIndex{cl}, func() { cl.Close(); f.stop() }, nil
	}}

	for _, seed := range []int64{1, 2} {
		ops := modeltest.Generate(seed, nOps, coordRange)
		for _, cfg := range []modeltest.Config{single, sharded} {
			err := modeltest.Replay(cfg.New, ops)
			var d *modeltest.Divergence
			if errors.As(err, &d) {
				shrunk := modeltest.Shrink(cfg.New, ops)
				path, werr := modeltest.WriteArtifact(cfg.Name, seed, d.Detail, shrunk)
				t.Fatalf("%s seed %d diverged: %v\nshrunk to %d ops (artifact %q, write err %v)",
					cfg.Name, seed, d, len(shrunk), path, werr)
			}
			if err != nil {
				t.Fatalf("%s seed %d: infrastructure: %v", cfg.Name, seed, err)
			}
		}
	}
}

// TestScatterContactsOnlyOverlappingShards pins the routing guarantee at
// the network level: a query whose x-interval misses a shard's range
// never produces a sub-read on that shard (checked through the per-shard
// routing counters), while the results remain exactly what one server
// would return.
func TestScatterContactsOnlyOverlappingShards(t *testing.T) {
	f, err := launchFleet([]int64{100, 200}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.stop()
	cl, err := server.Dial(f.addr, server.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Two points per shard.
	for _, p := range []geom.Point{{X: 10, Y: 1}, {X: 99, Y: 2}, {X: 100, Y: 3}, {X: 150, Y: 4}, {X: 200, Y: 5}, {X: 777, Y: 6}} {
		if _, err := cl.Insert(p); err != nil {
			t.Fatalf("insert %v: %v", p, err)
		}
	}
	queries := func() [3]uint64 {
		return [3]uint64{f.metrics.ShardQueries(0), f.metrics.ShardQueries(1), f.metrics.ShardQueries(2)}
	}

	cases := []struct {
		name      string
		xlo, xhi  int64
		contacted [3]bool
		want      []geom.Point
	}{
		{"inside-middle", 120, 180, [3]bool{false, true, false}, []geom.Point{{X: 150, Y: 4}}},
		{"spans-first-two", 50, 150, [3]bool{true, true, false}, []geom.Point{{X: 99, Y: 2}, {X: 100, Y: 3}, {X: 150, Y: 4}}},
		{"last-only", 300, 1000, [3]bool{false, false, true}, []geom.Point{{X: 777, Y: 6}}},
		{"all", 0, 1000, [3]bool{true, true, true}, []geom.Point{{X: 10, Y: 1}, {X: 99, Y: 2}, {X: 100, Y: 3}, {X: 150, Y: 4}, {X: 200, Y: 5}, {X: 777, Y: 6}}},
	}
	for _, tc := range cases {
		before := queries()
		got, err := cl.Query3(tc.xlo, tc.xhi, geom.MinCoord+1)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		after := queries()
		for i := range after {
			contacted := after[i] > before[i]
			if contacted != tc.contacted[i] {
				t.Errorf("%s: shard %d contacted=%v, want %v", tc.name, i, contacted, tc.contacted[i])
			}
		}
		if fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestBarrierReadYourWrites drives the full barrier translation against
// durable shards: write acks through the router carry virtual positions,
// and a read stamped with the last ack's position must be answered OK
// with the write visible — the router re-stamps the sub-reads with each
// shard's real (term, LSN) vector entry, which the shards then verify.
func TestBarrierReadYourWrites(t *testing.T) {
	if testing.Short() {
		t.Skip("durable fleet in -short")
	}
	dir := t.TempDir()
	f, err := launchFleet([]int64{500}, func(i int) string {
		d := filepath.Join(dir, fmt.Sprintf("shard%d", i))
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
		return d
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.stop()
	cl, err := server.Dial(f.addr, server.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var lastAck uint64
	for _, p := range []geom.Point{{X: 1, Y: 1}, {X: 1000, Y: 2}, {X: 2, Y: 3}} {
		resp, err := cl.Do(server.Request{Op: server.OpInsert, P: p})
		if err != nil {
			t.Fatalf("insert %v: %v", p, err)
		}
		if resp.Status != server.StatusOK {
			t.Fatalf("insert %v: status %d %q", p, resp.Status, resp.Msg)
		}
		if resp.Term != 0 {
			t.Fatalf("insert %v: ack term %d, want virtual term 0", p, resp.Term)
		}
		if resp.LSN <= lastAck {
			t.Fatalf("insert %v: virtual ack %d not above previous %d", p, resp.LSN, lastAck)
		}
		lastAck = resp.LSN
	}

	// The durable shards acked real LSNs; the vector must have them.
	if got := f.rt.barrierFor(0); got.lsn == 0 {
		t.Fatal("shard 0 vector entry still zero after durable write acks")
	}

	resp, err := cl.Do(server.Request{
		Op:   server.OpQuery3,
		Rect: geom.Rect{XLo: 0, XHi: 2000, YLo: 0, YHi: geom.MaxCoord},
		MinLSN: lastAck,
	})
	if err != nil {
		t.Fatalf("barrier query: %v", err)
	}
	if resp.Status != server.StatusOK {
		t.Fatalf("barrier query: status %d %q", resp.Status, resp.Msg)
	}
	want := []geom.Point{{X: 1, Y: 1}, {X: 2, Y: 3}, {X: 1000, Y: 2}}
	if fmt.Sprint(resp.Points) != fmt.Sprint(want) {
		t.Fatalf("barrier query: got %v, want %v", resp.Points, want)
	}
}

// TestVirtualBarrierVector unit-tests the translation state machine:
// noteAck folds the lexicographic max per shard and issues strictly
// increasing virtual positions; barrierFor returns the folded entry.
func TestVirtualBarrierVector(t *testing.T) {
	m, err := ParseShards("x<10@a:1,rest@b:1")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v := rt.noteAck(0, pos{1, 5}); v != 1 {
		t.Fatalf("first virtual pos %d, want 1", v)
	}
	if v := rt.noteAck(1, pos{1, 3}); v != 2 {
		t.Fatalf("second virtual pos %d, want 2", v)
	}
	// An older position must not regress the vector...
	rt.noteAck(0, pos{1, 4})
	if got := rt.barrierFor(0); got != (pos{1, 5}) {
		t.Fatalf("vector[0] = %+v, want {1 5}", got)
	}
	// ...but a newer term beats a larger LSN (lexicographic order).
	rt.noteAck(0, pos{2, 1})
	if got := rt.barrierFor(0); got != (pos{2, 1}) {
		t.Fatalf("vector[0] = %+v, want {2 1}", got)
	}
	if got := rt.barrierFor(1); got != (pos{1, 3}) {
		t.Fatalf("vector[1] = %+v, want {1 3}", got)
	}
}

// TestTopologyThroughWire pins the TOPOLOGY frame end to end: a router
// serves its shard map canonically; a standalone server answers ERR.
func TestTopologyThroughWire(t *testing.T) {
	f, err := launchFleet([]int64{42}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.stop()
	cl, err := server.Dial(f.addr, server.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	raw, err := cl.Topology()
	if err != nil {
		t.Fatalf("router TOPOLOGY: %v", err)
	}
	m, err := DecodeTopology(raw)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if m.Spec() != f.rt.Map().Spec() {
		t.Fatalf("topology spec %q, want %q", m.Spec(), f.rt.Map().Spec())
	}

	// Point-blank at a shard, the same frame must be refused, not crash.
	scl, err := server.Dial(f.nodes[0].addr, server.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer scl.Close()
	if _, err := scl.Topology(); err == nil {
		t.Fatal("standalone server answered TOPOLOGY with OK, want ERR")
	}
}
