package router

import (
	"encoding/binary"
	"errors"
	"fmt"

	"rangesearch/internal/geom"
)

// The TOPOLOGY response payload carries the router's shard map so clients
// (rsload -cluster, the resilient client) can learn the partition and
// optionally route client-side. The encoding is canonical — one byte
// string per map — so the decoder can be fuzzed for totality and exact
// re-encode:
//
//	payload := version(u8 = 1) count(u16 BE) shard*
//	shard   := hi(u64 BE, two's-complement x upper bound, inclusive)
//	           naddr(u8) (alen(u8) addr(alen bytes))*
//
// Lo bounds are implicit (the partition is gap-free: shard 0 starts at
// MinCoord, shard i+1 at shard i's hi + 1), his are strictly increasing,
// and the last hi is MaxCoord. naddr may be 0 only if the map carries no
// addresses at all is NOT allowed on the wire: a served topology always
// names at least a primary per shard.
const (
	topologyVersion byte = 1
	// maxTopologyShards bounds a decoded map: far above any real fleet,
	// small enough that a hostile count cannot balloon allocation.
	maxTopologyShards = 4096
	// maxShardAddrs bounds one shard's primary+failover list.
	maxShardAddrs = 16
)

// ErrTopology reports a malformed TOPOLOGY payload.
var ErrTopology = errors.New("router: malformed topology")

// EncodeTopology appends the canonical wire form of m to dst.
func EncodeTopology(dst []byte, m *Map) []byte {
	dst = append(dst, topologyVersion)
	var cnt [2]byte
	binary.BigEndian.PutUint16(cnt[:], uint16(len(m.Shards)))
	dst = append(dst, cnt[:]...)
	for _, sh := range m.Shards {
		var hi [8]byte
		binary.BigEndian.PutUint64(hi[:], uint64(sh.Hi))
		dst = append(dst, hi[:]...)
		dst = append(dst, byte(len(sh.Addrs)))
		for _, a := range sh.Addrs {
			dst = append(dst, byte(len(a)))
			dst = append(dst, a...)
		}
	}
	return dst
}

// DecodeTopology parses a TOPOLOGY payload. It is total over arbitrary
// input — any malformed payload yields an error wrapping ErrTopology,
// never a panic — and strict: every accepted payload re-encodes
// byte-identically (the fuzz target pins both).
func DecodeTopology(body []byte) (*Map, error) {
	if len(body) < 3 {
		return nil, fmt.Errorf("%w: truncated header", ErrTopology)
	}
	if body[0] != topologyVersion {
		return nil, fmt.Errorf("%w: version %d", ErrTopology, body[0])
	}
	n := int(binary.BigEndian.Uint16(body[1:3]))
	if n == 0 {
		return nil, fmt.Errorf("%w: empty shard map", ErrTopology)
	}
	if n > maxTopologyShards {
		return nil, fmt.Errorf("%w: %d shards (limit %d)", ErrTopology, n, maxTopologyShards)
	}
	rest := body[3:]
	m := &Map{Shards: make([]Shard, 0, n)}
	lo := int64(geom.MinCoord)
	for i := 0; i < n; i++ {
		if len(rest) < 9 {
			return nil, fmt.Errorf("%w: shard %d truncated", ErrTopology, i)
		}
		hi := int64(binary.BigEndian.Uint64(rest[:8]))
		naddr := int(rest[8])
		rest = rest[9:]
		if naddr == 0 {
			return nil, fmt.Errorf("%w: shard %d has no addresses", ErrTopology, i)
		}
		if naddr > maxShardAddrs {
			return nil, fmt.Errorf("%w: shard %d has %d addresses (limit %d)", ErrTopology, i, naddr, maxShardAddrs)
		}
		sh := Shard{Lo: lo, Hi: hi, Addrs: make([]string, 0, naddr)}
		for j := 0; j < naddr; j++ {
			if len(rest) < 1 {
				return nil, fmt.Errorf("%w: shard %d address %d truncated", ErrTopology, i, j)
			}
			alen := int(rest[0])
			rest = rest[1:]
			if alen == 0 {
				return nil, fmt.Errorf("%w: shard %d address %d empty", ErrTopology, i, j)
			}
			if len(rest) < alen {
				return nil, fmt.Errorf("%w: shard %d address %d truncated", ErrTopology, i, j)
			}
			addr := string(rest[:alen])
			rest = rest[alen:]
			if !validAddr(addr) {
				return nil, fmt.Errorf("%w: shard %d address %d malformed", ErrTopology, i, j)
			}
			sh.Addrs = append(sh.Addrs, addr)
		}
		m.Shards = append(m.Shards, sh)
		if i < n-1 {
			if hi == geom.MaxCoord {
				return nil, fmt.Errorf("%w: shard %d ends at +inf before the last", ErrTopology, i)
			}
			lo = hi + 1
		}
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrTopology, len(rest))
	}
	if err := m.validate(true); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTopology, err)
	}
	return m, nil
}

// validAddr rejects address strings that would break the textual -shards
// grammar on round-trip: the spec's own separators and non-printable
// bytes. Real host:port strings never contain any of these.
func validAddr(a string) bool {
	for i := 0; i < len(a); i++ {
		c := a[i]
		if c <= ' ' || c >= 0x7f || c == ',' || c == '|' || c == '@' {
			return false
		}
	}
	return true
}
