package router

import (
	"sync/atomic"
	"time"

	"rangesearch/internal/obs"
)

// shardMetrics is one shard's slice of the router's observability: how
// often the router talks to it, how long the shard takes to answer, and
// how many bytes flow each way.
type shardMetrics struct {
	latency  obs.Histogram // wall ns per forwarded sub-request
	bytesIn  obs.Histogram // response bytes from the shard (points mostly)
	bytesOut obs.Histogram // request bytes to the shard

	points  atomic.Uint64 // point writes (INSERT/DELETE) routed here by x
	queries atomic.Uint64 // QUERY3/QUERY4 sub-reads scattered here
	batches atomic.Uint64 // BATCH sub-batches routed here
	errors  atomic.Uint64 // sub-requests that came back non-OK
}

// Metrics aggregates the router's routing and per-shard signals. Create
// with NewMetrics (the per-shard arrays are sized to the map); all
// methods are safe for concurrent use from every connection handler.
type Metrics struct {
	shards []shardMetrics

	fanout obs.Histogram // shards contacted per scatter-gather query

	conns     atomic.Int64  // open inbound connections
	accepted  atomic.Uint64 // inbound connections ever accepted
	ops       atomic.Uint64 // inbound requests completed
	scatters  atomic.Uint64 // QUERY3/QUERY4 requests scatter-gathered
	merged    atomic.Uint64 // points merged into scatter-gather results
	splits    atomic.Uint64 // BATCH requests split across ≥ 2 shards
	topology  atomic.Uint64 // TOPOLOGY requests answered
	protoErr  atomic.Uint64 // malformed inbound frames / payloads
	shardErr  atomic.Uint64 // sub-requests failed after shard-client retries
	ambiguous atomic.Uint64 // OK write acks demoted to TIMEOUT after an ambiguous resend
	nonOK     atomic.Uint64 // inbound requests answered non-OK
}

// NewMetrics returns a Metrics sized for a map of nshards shards.
func NewMetrics(nshards int) *Metrics {
	return &Metrics{shards: make([]shardMetrics, nshards)}
}

// observeShard records one forwarded sub-request to shard i.
func (m *Metrics) observeShard(i int, lat time.Duration, out, in int, ok bool) {
	if i < 0 || i >= len(m.shards) {
		return
	}
	if lat < 0 {
		lat = 0
	}
	sm := &m.shards[i]
	sm.latency.Observe(uint64(lat))
	sm.bytesOut.Observe(uint64(out))
	sm.bytesIn.Observe(uint64(in))
	if !ok {
		sm.errors.Add(1)
	}
}

// ShardPoints returns the number of point writes routed to shard i.
func (m *Metrics) ShardPoints(i int) uint64 { return m.shards[i].points.Load() }

// ShardQueries returns the number of query sub-reads scattered to shard
// i — the counter the scatter-gather property test checks to prove
// non-overlapping shards are never contacted.
func (m *Metrics) ShardQueries(i int) uint64 { return m.shards[i].queries.Load() }

// ShardBatches returns the number of BATCH sub-batches routed to shard i.
func (m *Metrics) ShardBatches(i int) uint64 { return m.shards[i].batches.Load() }

// ShardErrors returns the number of shard i's non-OK sub-responses.
func (m *Metrics) ShardErrors(i int) uint64 { return m.shards[i].errors.Load() }

// Scatters returns the number of scatter-gathered queries.
func (m *Metrics) Scatters() uint64 { return m.scatters.Load() }

// Ops returns the number of completed inbound requests.
func (m *Metrics) Ops() uint64 { return m.ops.Load() }

// ShardMetricsSnapshot is the JSON-friendly per-shard view.
type ShardMetricsSnapshot struct {
	Points   uint64                `json:"points"`
	Queries  uint64                `json:"queries"`
	Batches  uint64                `json:"batches,omitempty"`
	Errors   uint64                `json:"errors,omitempty"`
	LatNs    obs.HistogramSnapshot `json:"lat_ns"`
	BytesIn  obs.HistogramSnapshot `json:"bytes_in"`
	BytesOut obs.HistogramSnapshot `json:"bytes_out"`
}

// MetricsSnapshot is the JSON-friendly view of the router's metrics,
// served on /metrics (expvar + Prometheus) next to the shard snapshots.
type MetricsSnapshot struct {
	Conns       int64                  `json:"conns"`
	Accepted    uint64                 `json:"accepted"`
	Ops         uint64                 `json:"ops"`
	Scatters    uint64                 `json:"scatters"`
	Merged      uint64                 `json:"merged_points"`
	Splits      uint64                 `json:"batch_splits"`
	Topology    uint64                 `json:"topology_serves"`
	ProtoErrors uint64                 `json:"proto_errors"`
	ShardErrors uint64                 `json:"shard_errors"`
	Ambiguous   uint64                 `json:"ambiguous_writes,omitempty"`
	NonOK       uint64                 `json:"non_ok"`
	Fanout      obs.HistogramSnapshot  `json:"fanout"`
	Shards      []ShardMetricsSnapshot `json:"shards"`
}

// Snapshot returns a point-in-time copy of every counter and histogram.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Conns:       m.conns.Load(),
		Accepted:    m.accepted.Load(),
		Ops:         m.ops.Load(),
		Scatters:    m.scatters.Load(),
		Merged:      m.merged.Load(),
		Splits:      m.splits.Load(),
		Topology:    m.topology.Load(),
		ProtoErrors: m.protoErr.Load(),
		ShardErrors: m.shardErr.Load(),
		Ambiguous:   m.ambiguous.Load(),
		NonOK:       m.nonOK.Load(),
		Fanout:      m.fanout.Snapshot(),
		Shards:      make([]ShardMetricsSnapshot, len(m.shards)),
	}
	for i := range m.shards {
		sm := &m.shards[i]
		s.Shards[i] = ShardMetricsSnapshot{
			Points:   sm.points.Load(),
			Queries:  sm.queries.Load(),
			Batches:  sm.batches.Load(),
			Errors:   sm.errors.Load(),
			LatNs:    sm.latency.Snapshot(),
			BytesIn:  sm.bytesIn.Snapshot(),
			BytesOut: sm.bytesOut.Snapshot(),
		}
	}
	return s
}

// PublishMetrics exports m.Snapshot() as the expvar
// "rangesearch.router.<name>" on the same /debug/vars surface
// obs.ServeMetrics serves.
func PublishMetrics(name string, m *Metrics) {
	obs.Publish("rangesearch.router."+name, func() interface{} {
		return m.Snapshot()
	})
}
