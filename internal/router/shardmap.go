// Package router is the horizontal-sharding layer: an x-range
// partitioning of the keyspace across N rsserve shards, each optionally a
// primary+replicas group, fronted by a scatter-gather router that speaks
// the same length-prefixed wire protocol on both sides.
//
// The partitioning is the natural one for the paper's structures: every
// index orders primarily by x, QUERY3/QUERY4 are x-interval queries, so
// splitting the x-axis into contiguous ranges keeps each shard's workload
// an ordinary (smaller) instance of the same problem — the per-shard
// Theorem 6/7 I/O bounds still apply shard-locally, and a query touches
// exactly the shards its x-interval overlaps.
//
// A shard map is a sorted list of disjoint closed x-intervals covering
// [MinCoord, MaxCoord]. The textual form mirrors the -shards flag:
//
//	spec  := shard ("," shard)*
//	shard := bound ["@" addr ("|" addr)*]
//	bound := "x<" int | "rest"
//
// "x<B" ends the shard at x = B-1 (exclusive upper bound B); bounds must
// be strictly increasing and "rest" — covering everything from the
// previous bound through +∞ — must be last and present. The first addr of
// a shard is its primary; addrs after "|" are failover candidates (the
// shard's replicas, promotable via SIGUSR1). The pure-bounds form without
// addresses ("x<100,x<200,rest") is accepted wherever only the partition
// matters (rsinspect splitplan emits it).
package router

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"rangesearch/internal/geom"
)

// Shard is one x-range partition and the node group serving it.
type Shard struct {
	// Lo and Hi bound the shard's closed x-interval [Lo, Hi].
	Lo, Hi int64
	// Addrs are the shard's serving addresses: Addrs[0] is the primary,
	// the rest are failover candidates in promotion order. Empty in a
	// bounds-only map.
	Addrs []string
}

// Map is a complete x-range partition: shards are sorted by Lo, disjoint,
// and cover [MinCoord, MaxCoord] with no gaps.
type Map struct {
	Shards []Shard
}

// ParseShards parses the -shards spec. Every shard must carry at least
// one address; use ParseBounds for the bounds-only form.
func ParseShards(spec string) (*Map, error) {
	m, err := parse(spec, true)
	if err != nil {
		return nil, fmt.Errorf("router: shard spec %q: %w", spec, err)
	}
	return m, nil
}

// ParseBounds parses a bounds-only spec ("x<100,x<200,rest") describing a
// partition with no serving addresses.
func ParseBounds(spec string) (*Map, error) {
	m, err := parse(spec, false)
	if err != nil {
		return nil, fmt.Errorf("router: bounds spec %q: %w", spec, err)
	}
	return m, nil
}

func parse(spec string, wantAddrs bool) (*Map, error) {
	parts := strings.Split(spec, ",")
	if len(parts) == 0 || spec == "" {
		return nil, fmt.Errorf("empty spec")
	}
	if len(parts) > maxTopologyShards {
		return nil, fmt.Errorf("%d shards (limit %d)", len(parts), maxTopologyShards)
	}
	m := &Map{Shards: make([]Shard, 0, len(parts))}
	lo := int64(geom.MinCoord)
	sawRest := false
	for i, part := range parts {
		if sawRest {
			return nil, fmt.Errorf("shard after \"rest\"")
		}
		bound, addrPart, hasAddrs := strings.Cut(part, "@")
		var hi int64
		switch {
		case bound == "rest":
			hi = geom.MaxCoord
			sawRest = true
		case strings.HasPrefix(bound, "x<"):
			b, err := strconv.ParseInt(bound[2:], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("shard %d: bad bound %q", i, bound)
			}
			if b == geom.MinCoord {
				return nil, fmt.Errorf("shard %d: bound %d leaves an empty shard", i, b)
			}
			hi = b - 1
			if hi < lo {
				return nil, fmt.Errorf("shard %d: bound %d not above previous bound", i, b)
			}
		default:
			return nil, fmt.Errorf("shard %d: bound %q (want \"x<N\" or \"rest\")", i, bound)
		}
		sh := Shard{Lo: lo, Hi: hi}
		if hasAddrs {
			for _, a := range strings.Split(addrPart, "|") {
				if a == "" || len(a) > 255 || !validAddr(a) {
					return nil, fmt.Errorf("shard %d: malformed address %q", i, a)
				}
				sh.Addrs = append(sh.Addrs, a)
			}
			if len(sh.Addrs) > maxShardAddrs {
				return nil, fmt.Errorf("shard %d: %d addresses (limit %d)", i, len(sh.Addrs), maxShardAddrs)
			}
		}
		if wantAddrs && len(sh.Addrs) == 0 {
			return nil, fmt.Errorf("shard %d: missing \"@addr\"", i)
		}
		if !wantAddrs && hasAddrs {
			return nil, fmt.Errorf("shard %d: unexpected address in bounds-only spec", i)
		}
		m.Shards = append(m.Shards, sh)
		if hi != geom.MaxCoord {
			lo = hi + 1
		}
	}
	if !sawRest {
		return nil, fmt.Errorf("spec must end with \"rest\"")
	}
	return m, nil
}

// Spec renders the map back in the -shards grammar. Parse∘Spec is the
// identity on valid maps (the canonical re-encode the fuzzer pins).
func (m *Map) Spec() string {
	var b strings.Builder
	for i, sh := range m.Shards {
		if i > 0 {
			b.WriteByte(',')
		}
		if sh.Hi == geom.MaxCoord {
			b.WriteString("rest")
		} else {
			b.WriteString("x<")
			b.WriteString(strconv.FormatInt(sh.Hi+1, 10))
		}
		if len(sh.Addrs) > 0 {
			b.WriteByte('@')
			b.WriteString(strings.Join(sh.Addrs, "|"))
		}
	}
	return b.String()
}

// ShardFor returns the index of the shard owning x.
func (m *Map) ShardFor(x int64) int {
	// First shard whose Hi ≥ x; total coverage guarantees it exists.
	return sort.Search(len(m.Shards), func(i int) bool { return m.Shards[i].Hi >= x })
}

// Overlap returns the half-open index range [lo, hi) of shards whose
// x-interval intersects [xlo, xhi]. Empty (lo == hi) when xlo > xhi.
func (m *Map) Overlap(xlo, xhi int64) (lo, hi int) {
	if xlo > xhi {
		return 0, 0
	}
	lo = m.ShardFor(xlo)
	hi = m.ShardFor(xhi) + 1
	return lo, hi
}

// validate checks the structural invariants a decoded (wire) map must
// satisfy: non-empty, sorted, disjoint, gap-free, total coverage.
func (m *Map) validate(wantAddrs bool) error {
	if len(m.Shards) == 0 {
		return fmt.Errorf("empty shard map")
	}
	lo := int64(geom.MinCoord)
	for i, sh := range m.Shards {
		if sh.Lo != lo {
			return fmt.Errorf("shard %d starts at %d, want %d", i, sh.Lo, lo)
		}
		if sh.Hi < sh.Lo {
			return fmt.Errorf("shard %d empty interval [%d, %d]", i, sh.Lo, sh.Hi)
		}
		if wantAddrs && len(sh.Addrs) == 0 {
			return fmt.Errorf("shard %d has no addresses", i)
		}
		if i == len(m.Shards)-1 {
			if sh.Hi != geom.MaxCoord {
				return fmt.Errorf("last shard ends at %d, not +inf", sh.Hi)
			}
		} else {
			if sh.Hi == geom.MaxCoord {
				return fmt.Errorf("shard %d ends at +inf before the last", i)
			}
			lo = sh.Hi + 1
		}
	}
	return nil
}
