package router

import (
	"bytes"
	"errors"
	"testing"

	"rangesearch/internal/geom"
)

// FuzzDecodeTopology pins the TOPOLOGY decoder's totality and strictness:
// arbitrary bytes either decode to a valid map or fail with ErrTopology —
// never panic — and every accepted payload re-encodes byte-identically
// (the encoding is canonical, one byte string per map).
func FuzzDecodeTopology(f *testing.F) {
	seed := func(spec string) []byte {
		m, err := ParseShards(spec)
		if err != nil {
			f.Fatal(err)
		}
		return EncodeTopology(nil, m)
	}
	f.Add(seed("rest@h:9035"))
	f.Add(seed("x<100@a:9035,rest@b:9035"))
	f.Add(seed("x<-5@a:1|b:2,x<100@c:3,rest@d:4"))
	f.Add([]byte{})
	f.Add([]byte{topologyVersion, 0, 0})
	f.Add([]byte{topologyVersion, 0xff, 0xff})
	f.Add([]byte{0, 0, 1})                                  // wrong version
	f.Add([]byte{topologyVersion, 0, 1, 0, 0, 0, 0, 0, 0}) // truncated shard

	f.Fuzz(func(t *testing.T, body []byte) {
		m, err := DecodeTopology(body)
		if err != nil {
			if !errors.Is(err, ErrTopology) {
				t.Fatalf("non-ErrTopology failure: %v", err)
			}
			return
		}
		re := EncodeTopology(nil, m)
		if !bytes.Equal(re, body) {
			t.Fatalf("round trip not canonical:\n in %x\nout %x", body, re)
		}
		// A decoded map is a valid partition: total, gap-free, addressed.
		if m.Shards[0].Lo != geom.MinCoord || m.Shards[len(m.Shards)-1].Hi != geom.MaxCoord {
			t.Fatalf("decoded map not total: %q", m.Spec())
		}
		// And its textual form parses back to the same map.
		if _, err := ParseShards(m.Spec()); err != nil {
			t.Fatalf("decoded map's spec %q does not parse: %v", m.Spec(), err)
		}
	})
}

// FuzzParseShards pins the -shards parser: total over arbitrary strings
// (reject or accept, never panic), and canonical on acceptance — the
// rendered Spec re-parses to a map that renders identically, and survives
// the topology codec unchanged. (The input itself need not equal its Spec:
// "x<0100" normalizes to "x<100".)
func FuzzParseShards(f *testing.F) {
	f.Add("rest@h:9035")
	f.Add("x<100@a:9035,rest@b:9035")
	f.Add("x<-5@a:1|b:2,x<100@c:3,rest@d:4")
	f.Add("x<0100@a:1,rest@b:2")
	f.Add("x<9223372036854775807@a:1,rest@b:2")
	f.Add("x<-9223372036854775808@a:1,rest@b:2")
	f.Add("rest")
	f.Add("x<1@,rest@b")
	f.Add("x<1@a,x<1@b,rest@c")
	f.Add(",,,")
	f.Add("x<1@a|b|c|d|e|f|g|h|i|j|k|l|m|n|o|p|q,rest@r")

	f.Fuzz(func(t *testing.T, spec string) {
		m, err := ParseShards(spec)
		if err != nil {
			return
		}
		s := m.Spec()
		m2, err := ParseShards(s)
		if err != nil {
			t.Fatalf("Spec %q of accepted %q does not re-parse: %v", s, spec, err)
		}
		if m2.Spec() != s {
			t.Fatalf("Spec not canonical: %q -> %q", s, m2.Spec())
		}
		enc := EncodeTopology(nil, m)
		dec, err := DecodeTopology(enc)
		if err != nil {
			t.Fatalf("accepted map %q does not survive the topology codec: %v", s, err)
		}
		if dec.Spec() != s {
			t.Fatalf("topology round trip: %q -> %q", s, dec.Spec())
		}
	})
}
