package router

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"testing"

	"rangesearch/internal/geom"
)

func mustBounds(t *testing.T, spec string) *Map {
	t.Helper()
	m, err := ParseBounds(spec)
	if err != nil {
		t.Fatalf("ParseBounds(%q): %v", spec, err)
	}
	return m
}

func TestParseShardsErrors(t *testing.T) {
	bad := []string{
		"",
		"rest",                           // wantAddrs but no addr
		"x<100@a:1",                      // no rest
		"rest@a:1,x<5@b:1",               // shard after rest
		"x<100@a:1,x<100@b:1,rest@c:1",   // duplicate bound
		"x<200@a:1,x<100@b:1,rest@c:1",   // decreasing bound
		"x<abc@a:1,rest@b:1",             // unparsable bound
		"y<100@a:1,rest@b:1",             // wrong axis
		"x<100@,rest@b:1",                // empty addr
		"x<100@a b:1,rest@b:1",           // space in addr
		"x<100@a,b:1,rest@c:1",           // comma splits into bad shard
		"x<-9223372036854775808@a,rest@b", // bound == MinCoord
	}
	for _, spec := range bad {
		if m, err := ParseShards(spec); err == nil {
			t.Errorf("ParseShards(%q) accepted: %+v", spec, m)
		}
	}
	if _, err := ParseBounds("x<100@a:1,rest@b:1"); err == nil {
		t.Error("ParseBounds accepted a spec with addresses")
	}
	if _, err := ParseShards("x<100@a:1,rest@b:1"); err != nil {
		t.Errorf("ParseShards rejected a valid spec: %v", err)
	}
}

// TestShardMapProperties drives random partitions against random query
// intervals and pins the two routing laws the scatter-gather relies on:
// the union of the overlapped shards' clipped intervals is exactly the
// query interval (no gaps, no spill), and no shard outside the Overlap
// range intersects the query at all — the "non-overlapping shards are
// never contacted" guarantee, checked here in its pure form (the network
// form is TestScatterContactsOnlyOverlappingShards).
func TestShardMapProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 500; iter++ {
		// Random strictly-increasing bounds over a mixed-magnitude domain.
		domain := int64(1) << (3 + rng.Intn(40))
		nb := rng.Intn(6)
		set := map[int64]struct{}{}
		for len(set) < nb {
			b := rng.Int63n(domain*2+1) - domain
			if b != geom.MinCoord {
				set[b] = struct{}{}
			}
		}
		bounds := make([]int64, 0, nb)
		for b := range set {
			bounds = append(bounds, b)
		}
		sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
		var parts []string
		for _, b := range bounds {
			parts = append(parts, "x<"+strconv.FormatInt(b, 10))
		}
		parts = append(parts, "rest")
		m := mustBounds(t, strings.Join(parts, ","))

		// Spec round-trips: Parse ∘ Spec is the identity.
		if re := mustBounds(t, m.Spec()); re.Spec() != m.Spec() {
			t.Fatalf("spec not canonical: %q -> %q", m.Spec(), re.Spec())
		}

		// ShardFor owns every probe point.
		for p := 0; p < 20; p++ {
			x := rng.Int63n(domain*2+1) - domain
			sh := m.Shards[m.ShardFor(x)]
			if x < sh.Lo || x > sh.Hi {
				t.Fatalf("%s: ShardFor(%d) -> [%d,%d]", m.Spec(), x, sh.Lo, sh.Hi)
			}
		}

		for q := 0; q < 20; q++ {
			xlo := rng.Int63n(domain*2+1) - domain
			xhi := xlo + rng.Int63n(domain)
			lo, hi := m.Overlap(xlo, xhi)
			if lo >= hi {
				t.Fatalf("%s: Overlap(%d,%d) empty for a non-empty interval", m.Spec(), xlo, xhi)
			}
			// Union of the clipped per-shard intervals covers [xlo, xhi]
			// contiguously.
			next := xlo
			for i := lo; i < hi; i++ {
				sh := m.Shards[i]
				clo, chi := max64(sh.Lo, xlo), min64(sh.Hi, xhi)
				if clo > chi {
					t.Fatalf("%s: shard %d in Overlap(%d,%d) but disjoint [%d,%d]", m.Spec(), i, xlo, xhi, sh.Lo, sh.Hi)
				}
				if clo != next {
					t.Fatalf("%s: Overlap(%d,%d) gap: shard %d starts at %d, want %d", m.Spec(), xlo, xhi, i, clo, next)
				}
				if chi == xhi {
					next = xhi
				} else {
					next = chi + 1
				}
			}
			if next != xhi {
				t.Fatalf("%s: Overlap(%d,%d) union ends at %d", m.Spec(), xlo, xhi, next)
			}
			// Everything outside the Overlap range is disjoint from the query.
			for i, sh := range m.Shards {
				if i >= lo && i < hi {
					continue
				}
				if sh.Lo <= xhi && sh.Hi >= xlo {
					t.Fatalf("%s: shard %d [%d,%d] intersects (%d,%d) but Overlap=[%d,%d)",
						m.Spec(), i, sh.Lo, sh.Hi, xlo, xhi, lo, hi)
				}
			}
		}

		// Empty query intervals contact nothing.
		if lo, hi := m.Overlap(5, 4); lo != hi {
			t.Fatalf("%s: Overlap(5,4) = [%d,%d), want empty", m.Spec(), lo, hi)
		}
	}
}

// TestTopologyRoundTrip pins Encode ∘ Decode as the identity on maps and
// Decode ∘ Encode as the identity on accepted payloads.
func TestTopologyRoundTrip(t *testing.T) {
	specs := []string{
		"rest@h:1",
		"x<100@a:9035,rest@b:9035",
		fmt.Sprintf("x<%d@a:1|b:2|c:3,x<0@d:4,rest@e:5", geom.MinCoord+1),
		fmt.Sprintf("x<%d@a:1,rest@b:2", geom.MaxCoord),
	}
	for _, spec := range specs {
		m, err := ParseShards(spec)
		if err != nil {
			t.Fatalf("ParseShards(%q): %v", spec, err)
		}
		enc := EncodeTopology(nil, m)
		dec, err := DecodeTopology(enc)
		if err != nil {
			t.Fatalf("%q: decode: %v", spec, err)
		}
		if dec.Spec() != m.Spec() {
			t.Fatalf("%q: round trip %q", m.Spec(), dec.Spec())
		}
		re := EncodeTopology(nil, dec)
		if string(re) != string(enc) {
			t.Fatalf("%q: re-encode differs", spec)
		}
	}
	if _, err := DecodeTopology(nil); err == nil {
		t.Fatal("DecodeTopology(nil) accepted")
	}
	if _, err := DecodeTopology([]byte{topologyVersion, 0, 0}); err == nil {
		t.Fatal("empty shard map accepted")
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
