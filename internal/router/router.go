package router

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"rangesearch/internal/geom"
	"rangesearch/internal/server"
)

// Options tunes a Router. The zero value serves with the documented
// defaults.
type Options struct {
	// Client is passed to every shard connection dial.
	Client server.ClientOptions
	// Retry bounds each shard client's reconnects and retries (dead or
	// failing shards are retried with bounded exponential backoff before
	// a failure surfaces to the inbound client).
	Retry server.RetryPolicy
	// MaxFrame is the inbound frame-size ceiling (default
	// server.DefaultMaxFrame).
	MaxFrame int
	// MaxBatchOps bounds the entries of one inbound BATCH frame (default
	// server.DefaultMaxBatchOps).
	MaxBatchOps int
	// IdleTimeout closes an inbound connection with no complete request
	// for this long (default 5m; <0 disables).
	IdleTimeout time.Duration
	// WriteTimeout bounds one inbound response write (default 30s).
	WriteTimeout time.Duration
	// Seed seeds the shard clients' backoff-jitter RNGs (0 = random).
	Seed int64
	// Metrics, when non-nil, receives routing counters and per-shard
	// histograms. Must be built with NewMetrics(len(map.Shards)).
	Metrics *Metrics
	// Logf, when non-nil, receives router lifecycle and error lines.
	Logf func(format string, args ...interface{})
}

func (o Options) withDefaults() Options {
	if o.MaxFrame <= 0 {
		o.MaxFrame = server.DefaultMaxFrame
	}
	if o.MaxBatchOps <= 0 {
		o.MaxBatchOps = server.DefaultMaxBatchOps
	}
	if o.IdleTimeout == 0 {
		o.IdleTimeout = 5 * time.Minute
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 30 * time.Second
	}
	return o
}

// pos is one shard's replication position.
type pos struct{ term, lsn uint64 }

// covers reports a ≥ b in the PR 8 barrier order: lexicographic, terms
// first, LSNs comparable only within a term.
func (a pos) covers(b pos) bool {
	return a.term > b.term || (a.term == b.term && a.lsn >= b.lsn)
}

// Router fronts an x-range-partitioned rsserve fleet with the same wire
// protocol the shards speak: INSERT/DELETE route point-wise by x, BATCH
// splits into per-shard sub-batches, QUERY3/QUERY4 scatter-gather across
// the shards their x-interval overlaps, and TOPOLOGY serves the shard
// map. IDEM envelopes forward unchanged, so a client retry re-routes
// deterministically and deduplicates per shard — exactly-once survives
// the extra hop.
//
// Consistency across the hop reuses PR 8's (term, LSN) barrier, with the
// router translating between two coordinate systems. Inbound write acks
// carry a VIRTUAL position (term 0, a router-global counter), because no
// single shard position orders cross-shard writes. Internally the router
// maintains, for each shard, the lexicographic max REAL (term, LSN) any
// forwarded write ack carried — folded in before the inbound ack goes
// out. A later inbound read stamped with a virtual barrier therefore
// finds every write it could have seen acked already reflected in the
// per-shard vector, and the router stamps each scattered sub-read with
// its shard's vector entry: each shard proves it has applied that
// session's acked writes (or answers STALE and the shard client retries
// on the primary). The vector is router-global, so the guarantee holds
// across inbound reconnects — any client whose barrier came from an ack
// of THIS router process is covered; barriers from foreign timelines
// (a client that talked to a shard directly) are not translatable and
// are served at the vector position instead.
type Router struct {
	shardMap *Map
	opts     Options
	topo     []byte // pre-encoded TOPOLOGY payload
	start    time.Time

	// posMu guards the barrier state: vpos is the virtual ack counter,
	// vec the per-shard max real position seen in write acks.
	posMu sync.Mutex
	vpos  uint64
	vec   []pos

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining bool

	wg sync.WaitGroup
}

// New builds a Router over m (which must carry addresses).
func New(m *Map, opts Options) (*Router, error) {
	if err := m.validate(true); err != nil {
		return nil, fmt.Errorf("router: %v", err)
	}
	opts = opts.withDefaults()
	if opts.Metrics != nil && len(opts.Metrics.shards) != len(m.Shards) {
		return nil, fmt.Errorf("router: metrics sized for %d shards, map has %d", len(opts.Metrics.shards), len(m.Shards))
	}
	return &Router{
		shardMap: m,
		opts:     opts,
		topo:     EncodeTopology(nil, m),
		start:    time.Now(),
		vec:      make([]pos, len(m.Shards)),
		conns:    map[net.Conn]struct{}{},
	}, nil
}

// Map returns the router's shard map.
func (rt *Router) Map() *Map { return rt.shardMap }

// noteAck folds a forwarded write ack's real shard position into the
// vector and issues the next virtual position, all before the inbound
// ack leaves — the ordering the barrier translation depends on.
func (rt *Router) noteAck(shard int, p pos) uint64 {
	rt.posMu.Lock()
	defer rt.posMu.Unlock()
	if !rt.vec[shard].covers(p) {
		rt.vec[shard] = p
	}
	rt.vpos++
	return rt.vpos
}

// barrierFor returns the sub-read barrier for one shard: the shard's
// current vector entry, which covers every write this router ever acked
// there. Zero means the shard has never acked a position (e.g. a
// memory-backed shard) and the sub-read goes out unstamped — the
// canonical encoding forbids a zero BARRIER envelope, and there is
// nothing to wait for anyway.
func (rt *Router) barrierFor(shard int) pos {
	rt.posMu.Lock()
	defer rt.posMu.Unlock()
	return rt.vec[shard]
}

func (rt *Router) logf(format string, args ...interface{}) {
	if rt.opts.Logf != nil {
		rt.opts.Logf(format, args...)
	}
}

// Serve accepts connections on ln until Shutdown (or a permanent accept
// error) and blocks until every connection handler has exited.
func (rt *Router) Serve(ln net.Listener) error {
	rt.mu.Lock()
	if rt.draining {
		rt.mu.Unlock()
		ln.Close()
		return errors.New("router: already shut down")
	}
	rt.ln = ln
	rt.mu.Unlock()

	var err error
	for {
		conn, aerr := ln.Accept()
		if aerr != nil {
			rt.mu.Lock()
			draining := rt.draining
			rt.mu.Unlock()
			if !draining {
				err = aerr
			}
			break
		}
		rt.mu.Lock()
		if rt.draining {
			rt.mu.Unlock()
			conn.Close()
			break
		}
		rt.conns[conn] = struct{}{}
		rt.mu.Unlock()
		if m := rt.opts.Metrics; m != nil {
			m.accepted.Add(1)
			m.conns.Add(1)
		}
		rt.wg.Add(1)
		go rt.handleConn(conn)
	}
	rt.wg.Wait()
	return err
}

// Shutdown drains the router: the listener closes, inbound connections
// finish the request they are handling and close. It blocks until every
// handler has exited or ctx is done.
func (rt *Router) Shutdown(ctx context.Context) error {
	rt.mu.Lock()
	rt.draining = true
	if rt.ln != nil {
		rt.ln.Close()
	}
	for conn := range rt.conns {
		_ = conn.SetReadDeadline(time.Now())
	}
	rt.mu.Unlock()

	done := make(chan struct{})
	go func() {
		rt.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		rt.mu.Lock()
		for conn := range rt.conns {
			conn.Close()
		}
		rt.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

func (rt *Router) isDraining() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.draining
}

func (rt *Router) dropConn(conn net.Conn) {
	rt.mu.Lock()
	delete(rt.conns, conn)
	rt.mu.Unlock()
	conn.Close()
	if m := rt.opts.Metrics; m != nil {
		m.conns.Add(-1)
	}
}

// conn is one inbound connection's routing state: a lazily-connecting
// resilient client per shard (each a single-goroutine pipeline, which the
// sequential frame loop respects) so one slow or restarting shard is
// retried without poisoning the others.
type routerConn struct {
	rt     *Router
	shards []*server.ResilientClient
}

func (rc *routerConn) close() {
	for _, sc := range rc.shards {
		if sc != nil {
			sc.Close()
		}
	}
}

// shard returns the resilient client for shard i, building it on first
// use (construction does not dial — a down shard costs nothing until a
// request actually routes to it).
func (rc *routerConn) shard(i int) *server.ResilientClient {
	if rc.shards[i] == nil {
		sh := rc.rt.shardMap.Shards[i]
		seed := rc.rt.opts.Seed
		if seed != 0 {
			seed += int64(i) * 6151
		}
		rc.shards[i] = server.NewResilient(sh.Addrs[0], server.ResilientOptions{
			Client:        rc.rt.opts.Client,
			Retry:         rc.rt.opts.Retry,
			Seed:          seed,
			FailoverAddrs: sh.Addrs[1:],
		})
	}
	return rc.shards[i]
}

// handleConn runs one inbound connection's request loop: read frame,
// route, write response, in request order — the same sequential contract
// rsserve gives, so pipelined clients keep per-connection ordering and
// read-your-writes across the extra hop.
func (rt *Router) handleConn(conn net.Conn) {
	defer rt.wg.Done()
	defer rt.dropConn(conn)
	rc := &routerConn{rt: rt, shards: make([]*server.ResilientClient, len(rt.shardMap.Shards))}
	defer rc.close()
	defer func() {
		if r := recover(); r != nil {
			rt.logf("router: connection %v: handler panic: %v\n%s", conn.RemoteAddr(), r, debug.Stack())
		}
	}()

	br := bufio.NewReaderSize(conn, 32*1024)
	bw := bufio.NewWriterSize(conn, 32*1024)
	var respBuf []byte
	m := rt.opts.Metrics
	for {
		if rt.isDraining() {
			bw.Flush()
			return
		}
		if rt.opts.IdleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(rt.opts.IdleTimeout))
		}
		body, err := server.ReadFrame(br, rt.opts.MaxFrame)
		if err != nil {
			if errors.Is(err, server.ErrFrameTooLarge) || errors.Is(err, server.ErrProto) {
				if m != nil {
					m.protoErr.Add(1)
				}
				respBuf = server.EncodeResponse(respBuf[:0], 0, server.Response{Status: server.StatusErr, Msg: err.Error()})
				rt.writeResponse(conn, bw, respBuf)
			}
			bw.Flush()
			return
		}
		req, derr := server.DecodeRequest(body, rt.opts.MaxBatchOps)
		var resp server.Response
		op := byte(0)
		if derr != nil {
			if m != nil {
				m.protoErr.Add(1)
			}
			resp = server.Response{Status: server.StatusErr, Msg: derr.Error()}
		} else {
			op = req.Op
			resp = rt.route(rc, req)
		}
		if m != nil {
			m.ops.Add(1)
			if resp.Status != server.StatusOK {
				m.nonOK.Add(1)
			}
		}
		respBuf = server.EncodeResponse(respBuf[:0], op, resp)
		if !rt.writeResponse(conn, bw, respBuf) {
			return
		}
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

func (rt *Router) writeResponse(conn net.Conn, bw *bufio.Writer, body []byte) bool {
	if rt.opts.WriteTimeout > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(rt.opts.WriteTimeout))
	}
	return server.WriteFrame(bw, body) == nil
}

// route dispatches one decoded inbound request.
func (rt *Router) route(rc *routerConn, req server.Request) server.Response {
	switch req.Op {
	case server.OpPing:
		return server.Response{Status: server.StatusOK, Data: req.Data}
	case server.OpTopology:
		if m := rt.opts.Metrics; m != nil {
			m.topology.Add(1)
		}
		return server.Response{Status: server.StatusOK, Data: rt.topo}
	case server.OpStats:
		return rt.routeStats(rc)
	case server.OpInsert, server.OpDelete:
		return rt.routePoint(rc, req)
	case server.OpBatch:
		return rt.routeBatch(rc, req)
	case server.OpQuery3, server.OpQuery4:
		return rt.routeQuery(rc, req)
	default:
		return server.Response{Status: server.StatusErr, Msg: fmt.Sprintf("router: unhandled opcode 0x%02x", req.Op)}
	}
}

// forward runs one sub-request on shard i through its resilient client,
// recording per-shard latency. A transport failure past the client's
// retry budget surfaces as TIMEOUT: the outcome is genuinely unknown (the
// shard may have executed a write whose connection died), and TIMEOUT is
// the one status whose contract says exactly that. The second return is
// true when the sub-request was re-sent after an ambiguous failure —
// write callers must not trust the response's Duplicate/Found/Results.
func (rt *Router) forward(rc *routerConn, i int, req server.Request) (server.Response, bool) {
	t0 := time.Now()
	if err := rc.shard(i).Send(req, nil); err != nil {
		return server.Response{Status: server.StatusErr, Msg: err.Error()}, false
	}
	res, err := rc.shard(i).Recv()
	if err != nil {
		if m := rt.opts.Metrics; m != nil {
			m.shardErr.Add(1)
			m.observeShard(i, time.Since(t0), 0, 0, false)
		}
		rt.logf("router: shard %d (%s): %s failed: %v", i, rt.shardMap.Shards[i].Addrs[0], server.OpName(req.Op), err)
		return server.Response{Status: server.StatusTimeout}, true
	}
	if m := rt.opts.Metrics; m != nil {
		m.observeShard(i, time.Since(t0), reqBytes(req), respBytes(res.Resp), res.Resp.Status == server.StatusOK)
	}
	return res.Resp, res.Retried
}

// routePoint routes an INSERT/DELETE to the one shard owning its x. The
// IDEM envelope (if any) forwards unchanged — same (client, seq) on the
// same shard on every retry, so the shard's dedup window keeps the write
// exactly-once. The ack is re-stamped with a virtual router position.
func (rt *Router) routePoint(rc *routerConn, req server.Request) server.Response {
	i := rt.shardMap.ShardFor(req.P.X)
	if m := rt.opts.Metrics; m != nil {
		m.shards[i].points.Add(1)
	}
	resp, retried := rt.forward(rc, i, req)
	if resp.Status != server.StatusOK {
		return resp
	}
	v := rt.noteAck(i, pos{resp.Term, resp.LSN})
	if retried {
		// The shard client re-sent this write after an ambiguous failure.
		// If the shard restarted in between, its (in-memory) dedup window
		// was lost and the re-send re-executed, so Duplicate/Found may
		// describe the wrong execution — and unlike a client-side retry,
		// the inbound client has no idea a resend happened, so it cannot
		// apply its own tainted-flag accounting. Only "outcome unknown"
		// is truthful; the client's IDEM retry then replays from the
		// shard's now-populated window. The ack position is still folded
		// above: the write is durably applied whichever execution landed.
		if m := rt.opts.Metrics; m != nil {
			m.ambiguous.Add(1)
		}
		return server.Response{Status: server.StatusTimeout}
	}
	resp.Term, resp.LSN = 0, v
	return resp
}

// routeBatch splits a BATCH deterministically into per-shard sub-batches
// (entry order preserved within each shard), forwards them concurrently
// over the per-shard pipelines, and folds the per-entry codes back into
// the original order. The IDEM envelope forwards unchanged onto every
// sub-batch: a retry re-splits identically, so each shard sees the same
// (client, seq, sub-batch) and deduplicates.
//
// Cross-shard batches lose whole-request failure atomicity (each shard
// commits its own sub-batch): if every sub-batch fails un-executed the
// first failure surfaces truthfully, but a mixed outcome surfaces as
// TIMEOUT — "outcome unknown, retry under IDEM" — which is exactly the
// contract a partially-applied batch needs.
func (rt *Router) routeBatch(rc *routerConn, req server.Request) server.Response {
	if len(req.Batch) == 0 {
		return server.Response{Status: server.StatusOK}
	}
	type split struct {
		shard   int
		entries []server.BatchEntry
		slots   []int // original entry index per sub-entry
		resp    server.Response
		t0      time.Time
	}
	var splits []*split
	bySplit := map[int]*split{}
	for idx, e := range req.Batch {
		i := rt.shardMap.ShardFor(e.P.X)
		sp, ok := bySplit[i]
		if !ok {
			sp = &split{shard: i}
			bySplit[i] = sp
			splits = append(splits, sp)
		}
		sp.entries = append(sp.entries, e)
		sp.slots = append(sp.slots, idx)
	}
	m := rt.opts.Metrics
	if m != nil && len(splits) > 1 {
		m.splits.Add(1)
	}
	// Send every sub-batch before receiving any: the sub-requests ride
	// different connections, so their round trips overlap.
	retried := false
	for _, sp := range splits {
		sub := server.Request{Op: server.OpBatch, Batch: sp.entries, Idem: req.Idem, Trace: req.Trace}
		sp.t0 = time.Now()
		if m != nil {
			m.shards[sp.shard].batches.Add(1)
		}
		if err := rc.shard(sp.shard).Send(sub, nil); err != nil {
			// Only an encoding rejection fails Send; report it on this shard.
			sp.resp = server.Response{Status: server.StatusErr, Msg: err.Error()}
		}
	}
	for _, sp := range splits {
		if sp.resp.Status != server.StatusOK {
			continue // Send already failed with an encoding error
		}
		res, err := rc.shard(sp.shard).Recv()
		if err != nil {
			if m != nil {
				m.shardErr.Add(1)
				m.observeShard(sp.shard, time.Since(sp.t0), 0, 0, false)
			}
			rt.logf("router: shard %d: batch failed: %v", sp.shard, err)
			sp.resp = server.Response{Status: server.StatusTimeout}
			continue
		}
		sp.resp = res.Resp
		retried = retried || res.Retried
		if m != nil {
			m.observeShard(sp.shard, time.Since(sp.t0), (1+17)*len(sp.entries), len(sp.entries), res.Resp.Status == server.StatusOK)
		}
	}

	okCount := 0
	var firstFail *server.Response
	for _, sp := range splits {
		if sp.resp.Status == server.StatusOK {
			okCount++
		} else if firstFail == nil {
			firstFail = &sp.resp
		}
	}
	if firstFail != nil {
		if okCount > 0 {
			// Partially applied: only "outcome unknown" is truthful.
			return server.Response{Status: server.StatusTimeout}
		}
		return *firstFail
	}
	results := make([]byte, len(req.Batch))
	var vlast uint64
	for _, sp := range splits {
		if len(sp.resp.Results) != len(sp.entries) {
			return server.Response{Status: server.StatusErr,
				Msg: fmt.Sprintf("router: shard %d returned %d results for %d entries", sp.shard, len(sp.resp.Results), len(sp.entries))}
		}
		for j, code := range sp.resp.Results {
			results[sp.slots[j]] = code
		}
		vlast = rt.noteAck(sp.shard, pos{sp.resp.Term, sp.resp.LSN})
	}
	if retried {
		// Same rule as routePoint: an ambiguous resend may have
		// re-executed on a restarted shard's empty dedup window, so the
		// per-entry codes are untrustworthy. Acks are folded above; the
		// client's IDEM retry converges.
		if m != nil {
			m.ambiguous.Add(1)
		}
		return server.Response{Status: server.StatusTimeout}
	}
	return server.Response{Status: server.StatusOK, Results: results, LSN: vlast}
}

// routeQuery scatter-gathers a QUERY3/QUERY4 across exactly the shards
// whose x-range overlaps the query rectangle, merges the results into
// canonical (x, then y) order, and propagates the read barrier: an
// inbound barrier (a virtual router position from an earlier ack) is
// translated to each shard's real vector position, which by noteAck's
// ordering covers every write the client saw acked.
func (rt *Router) routeQuery(rc *routerConn, req server.Request) server.Response {
	lo, hi := rt.shardMap.Overlap(req.Rect.XLo, req.Rect.XHi)
	m := rt.opts.Metrics
	if m != nil {
		m.scatters.Add(1)
		m.fanout.Observe(uint64(hi - lo))
	}
	if lo == hi {
		// An empty x-interval overlaps nothing; answer like an empty shard.
		return server.Response{Status: server.StatusOK}
	}
	barrier := req.MinTerm != 0 || req.MinLSN != 0
	type sub struct {
		shard int
		req   server.Request
		t0    time.Time
		fail  *server.Response
	}
	subs := make([]sub, 0, hi-lo)
	for i := lo; i < hi; i++ {
		sreq := req
		sreq.MinTerm, sreq.MinLSN = 0, 0
		if barrier {
			p := rt.barrierFor(i)
			sreq.MinTerm, sreq.MinLSN = p.term, p.lsn
		}
		if m != nil {
			m.shards[i].queries.Add(1)
		}
		s := sub{shard: i, req: sreq, t0: time.Now()}
		if err := rc.shard(i).Send(sreq, nil); err != nil {
			s.fail = &server.Response{Status: server.StatusErr, Msg: err.Error()}
		}
		subs = append(subs, s)
	}
	var points []geom.Point
	var firstFail *server.Response
	for _, s := range subs {
		if s.fail != nil {
			if firstFail == nil {
				firstFail = s.fail
			}
			continue
		}
		res, err := rc.shard(s.shard).Recv()
		if err != nil {
			if m != nil {
				m.shardErr.Add(1)
				m.observeShard(s.shard, time.Since(s.t0), 0, 0, false)
			}
			rt.logf("router: shard %d: %s failed: %v", s.shard, server.OpName(req.Op), err)
			if firstFail == nil {
				firstFail = &server.Response{Status: server.StatusTimeout}
			}
			continue
		}
		resp := res.Resp
		if m != nil {
			m.observeShard(s.shard, time.Since(s.t0), reqBytes(s.req), respBytes(resp), resp.Status == server.StatusOK)
		}
		if resp.Status != server.StatusOK {
			if firstFail == nil {
				r := resp
				firstFail = &r
			}
			continue
		}
		points = append(points, resp.Points...)
	}
	if firstFail != nil {
		return *firstFail
	}
	// Shards are x-disjoint and answer in internal order, but sub-reads
	// complete independently: merge into the canonical whole-keyspace
	// order (x, then y) a single node would have produced.
	sort.Slice(points, func(i, j int) bool {
		if points[i].X != points[j].X {
			return points[i].X < points[j].X
		}
		return points[i].Y < points[j].Y
	})
	if m != nil {
		m.merged.Add(uint64(len(points)))
	}
	return server.Response{Status: server.StatusOK, Points: points}
}

// StatsSnapshot is the JSON payload of the router's STATS response: the
// cluster-aggregate view (the "len" key is the fleet total, so a load
// generator's emptiness probe works unchanged through the router) plus
// each shard's own snapshot and the routing metrics.
type StatsSnapshot struct {
	UptimeS float64 `json:"uptime_s"`
	// Len is the fleet-total point count.
	Len int `json:"len"`
	// Shards is the shard count; Spec the canonical shard-map spec.
	Shards int    `json:"shards"`
	Spec   string `json:"spec"`
	// VPos is the router's virtual ack position (the LSN namespace
	// inbound write acks use).
	VPos uint64 `json:"vpos"`
	// Router is the routing metrics snapshot (nil without Metrics).
	Router *MetricsSnapshot `json:"router,omitempty"`
	// PerShard holds each shard's own STATS snapshot, in map order.
	PerShard []*server.StatsSnapshot `json:"per_shard,omitempty"`
}

// routeStats fans STATS to every shard and aggregates: the fleet is only
// as observable as its least reachable member, so any shard failure
// surfaces instead of a silently partial total.
func (rt *Router) routeStats(rc *routerConn) server.Response {
	snap := StatsSnapshot{
		UptimeS: time.Since(rt.start).Seconds(),
		Shards:  len(rt.shardMap.Shards),
		Spec:    rt.shardMap.Spec(),
	}
	rt.posMu.Lock()
	snap.VPos = rt.vpos
	rt.posMu.Unlock()
	if m := rt.opts.Metrics; m != nil {
		ms := m.Snapshot()
		snap.Router = &ms
	}
	for i := range rt.shardMap.Shards {
		resp, _ := rt.forward(rc, i, server.Request{Op: server.OpStats})
		if resp.Status != server.StatusOK {
			return resp
		}
		var st server.StatsSnapshot
		if err := json.Unmarshal(resp.Data, &st); err != nil {
			return server.Response{Status: server.StatusErr, Msg: fmt.Sprintf("router: shard %d stats: %v", i, err)}
		}
		snap.Len += st.Len
		snap.PerShard = append(snap.PerShard, &st)
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		return server.Response{Status: server.StatusErr, Msg: err.Error()}
	}
	return server.Response{Status: server.StatusOK, Data: raw}
}

// reqBytes / respBytes approximate wire sizes for the per-shard byte
// histograms without re-encoding (points dominate both directions).
func reqBytes(r server.Request) int {
	switch r.Op {
	case server.OpInsert, server.OpDelete:
		return 17
	case server.OpQuery3:
		return 25
	case server.OpQuery4:
		return 33
	case server.OpBatch:
		return 5 + 17*len(r.Batch)
	default:
		return 1 + len(r.Data)
	}
}

func respBytes(r server.Response) int {
	return 5 + 16*len(r.Points) + len(r.Results) + len(r.Data)
}
