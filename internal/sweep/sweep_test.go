package sweep

import (
	"math/rand"
	"testing"

	"rangesearch/internal/geom"
)

// brute3 returns the points of pts satisfying q.
func brute3(pts []geom.Point, q geom.Query3) []geom.Point {
	var out []geom.Point
	for _, p := range pts {
		if q.Contains(p) {
			out = append(out, p)
		}
	}
	geom.SortByX(out)
	return out
}

func randPoints(rng *rand.Rand, n int, coordRange int64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Int63n(coordRange), Y: rng.Int63n(coordRange)}
	}
	return pts
}

func checkQueries(t *testing.T, s *Scheme, pts []geom.Point, rng *rand.Rand, coordRange int64, trials int) {
	t.Helper()
	for i := 0; i < trials; i++ {
		a := rng.Int63n(coordRange)
		b := a + rng.Int63n(coordRange-a+1)
		c := rng.Int63n(coordRange)
		q := geom.Query3{XLo: a, XHi: b, YLo: c}
		got, _ := s.Query3(nil, q)
		geom.SortByX(got)
		want := brute3(pts, q)
		if len(got) != len(want) {
			t.Fatalf("query %v: got %d points, want %d", q, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("query %v: point %d: got %v want %v", q, j, got[j], want[j])
			}
		}
	}
}

func TestBuildEmpty(t *testing.T) {
	s, err := Build(nil, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumBlocks() != 0 {
		t.Fatalf("empty scheme has %d blocks", s.NumBlocks())
	}
	got, nb := s.Query3(nil, geom.Query3{XLo: 0, XHi: 10, YLo: 0})
	if len(got) != 0 || nb != 0 {
		t.Fatalf("query on empty scheme returned %d points, %d blocks", len(got), nb)
	}
}

func TestBuildRejectsBadParams(t *testing.T) {
	if _, err := Build(nil, 1, 2); err == nil {
		t.Error("B=1 accepted")
	}
	if _, err := Build(nil, 4, 1); err == nil {
		t.Error("alpha=1 accepted")
	}
}

func TestQueryCorrectnessRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 7, 64, 500, 2000} {
		for _, b := range []int{4, 16} {
			for _, alpha := range []int{2, 3, 4} {
				pts := randPoints(rng, n, 1000)
				s, err := Build(pts, b, alpha)
				if err != nil {
					t.Fatal(err)
				}
				checkQueries(t, s, pts, rng, 1000, 50)
			}
		}
	}
}

func TestQueryCorrectnessDuplicateX(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Many duplicate x-coordinates (only 10 distinct x values).
	pts := make([]geom.Point, 800)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Int63n(10), Y: rng.Int63n(500)}
	}
	s, err := Build(pts, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkQueries(t, s, pts, rng, 500, 100)
}

func TestQueryDegenerate(t *testing.T) {
	pts := []geom.Point{{X: 5, Y: 5}, {X: 5, Y: 6}, {X: 6, Y: 5}}
	s, err := Build(pts, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Full-range query.
	got, _ := s.Query3(nil, geom.Query3{XLo: geom.MinCoord, XHi: geom.MaxCoord, YLo: geom.MinCoord})
	if len(got) != 3 {
		t.Fatalf("full query returned %d points", len(got))
	}
	// Empty x-range.
	got, _ = s.Query3(nil, geom.Query3{XLo: 10, XHi: 5, YLo: 0})
	if len(got) != 0 {
		t.Fatalf("empty-range query returned %d points", len(got))
	}
	// Threshold above all points.
	got, nb := s.Query3(nil, geom.Query3{XLo: 0, XHi: 10, YLo: 100})
	if len(got) != 0 || nb != 0 {
		t.Fatalf("above-max query returned %d points via %d blocks", len(got), nb)
	}
}

func TestRedundancyBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, alpha := range []int{2, 3, 5, 8} {
		pts := randPoints(rng, 4000, 100000)
		s, err := Build(pts, 16, alpha)
		if err != nil {
			t.Fatal(err)
		}
		bound := 1 + 1/float64(alpha-1)
		// The paper's bound counts blocks against full occupancy; the final
		// (short) initial block adds at most one extra block. Allow that.
		slack := float64(s.B()) / float64(s.NumPoints())
		if r := s.Redundancy(); r > bound+slack+1e-9 {
			t.Errorf("alpha=%d: redundancy %.4f exceeds bound %.4f", alpha, r, bound)
		}
	}
}

func TestAccessOverheadBound(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := randPoints(rng, 3000, 10000)
	b, alpha := 16, 2
	s, err := Build(pts, b, alpha)
	if err != nil {
		t.Fatal(err)
	}
	// k blocks read must satisfy k ≤ α²t + α + 1 (Section 2.2.1).
	for i := 0; i < 300; i++ {
		a := rng.Int63n(10000)
		bb := a + rng.Int63n(10000-a+1)
		c := rng.Int63n(10000)
		q := geom.Query3{XLo: a, XHi: bb, YLo: c}
		got, k := s.Query3(nil, q)
		tBlocks := (len(got) + b - 1) / b
		if limit := alpha*alpha*tBlocks + alpha + 1; k > limit {
			t.Errorf("query %v: read %d blocks for t=%d (limit %d)", q, k, tBlocks, limit)
		}
	}
}

// TestInvariantEveryLivePointCoveredOnce checks the core scheme property:
// at every threshold c, each point with y ≥ c is live in exactly one active
// block whose x-range contains it.
func TestActiveBlocksPartitionLivePoints(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := randPoints(rng, 600, 300)
	s, err := Build(pts, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 60; trial++ {
		c := rng.Int63n(300)
		// Count, for each live point, how many active blocks contain it
		// among their stored points with y ≥ c.
		counts := make(map[geom.Point]int)
		for i := range s.Blocks() {
			blk := &s.Blocks()[i]
			if !blk.ActiveFor(c) {
				continue
			}
			seen := make(map[geom.Point]bool)
			for _, p := range blk.Points {
				if p.Y >= c && !seen[p] {
					seen[p] = true
					counts[p]++
				}
			}
		}
		for _, p := range pts {
			if p.Y >= c && counts[p] < 1 {
				t.Fatalf("threshold %d: live point %v not in any active block", c, p)
			}
		}
	}
}
