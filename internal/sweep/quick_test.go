package sweep

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"rangesearch/internal/geom"
)

// Property: for any point set, B, α, and any 3-sided query, the scheme
// reports exactly the matching points and never exceeds the Theorem 4
// cover bound.
func TestQuickSchemeCorrectAndBounded(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 120,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			n := rng.Intn(300)
			pts := make([]geom.Point, n)
			for i := range pts {
				pts[i] = geom.Point{X: rng.Int63n(64), Y: rng.Int63n(64)}
			}
			vals[0] = reflect.ValueOf(pts)
			vals[1] = reflect.ValueOf(2 + rng.Intn(10)) // B
			vals[2] = reflect.ValueOf(2 + rng.Intn(4))  // alpha
			vals[3] = reflect.ValueOf(rng.Int63())
		},
	}
	err := quick.Check(func(pts []geom.Point, b, alpha int, qseed int64) bool {
		s, err := Build(pts, b, alpha)
		if err != nil {
			return false
		}
		// Redundancy bound (+ slack for the final short initial block).
		if s.NumPoints() > 0 {
			bound := 1 + 1/float64(alpha-1) + float64(b)/float64(s.NumPoints())
			if s.Redundancy() > bound+1e-9 {
				return false
			}
		}
		rng := rand.New(rand.NewSource(qseed))
		for trial := 0; trial < 10; trial++ {
			a := rng.Int63n(70) - 3
			bb := a + rng.Int63n(70)
			c := rng.Int63n(70) - 3
			q := geom.Query3{XLo: a, XHi: bb, YLo: c}
			got, k := s.Query3(nil, q)
			// Exact multiset equality via counting.
			want := map[geom.Point]int{}
			for _, p := range pts {
				if q.Contains(p) {
					want[p]++
				}
			}
			gotCnt := map[geom.Point]int{}
			for _, p := range got {
				gotCnt[p]++
			}
			if len(gotCnt) != len(want) {
				return false
			}
			total := 0
			for p, c := range want {
				if gotCnt[p] != c {
					return false
				}
				total += c
			}
			tb := (total + b - 1) / b
			if k > alpha*alpha*tb+alpha+1 {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// Property: block metadata is internally consistent — activity intervals
// are well-formed and stored points lie inside the block's x-range.
func TestQuickBlockMetadata(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 80,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			n := 1 + rng.Intn(400)
			pts := make([]geom.Point, n)
			for i := range pts {
				pts[i] = geom.Point{X: rng.Int63n(128), Y: rng.Int63n(128)}
			}
			vals[0] = reflect.ValueOf(pts)
			vals[1] = reflect.ValueOf(2 + rng.Intn(8))
		},
	}
	err := quick.Check(func(pts []geom.Point, b int) bool {
		s, err := Build(pts, b, 2)
		if err != nil {
			return false
		}
		for i := range s.Blocks() {
			blk := &s.Blocks()[i]
			if len(blk.Points) > b {
				return false
			}
			for _, p := range blk.Points {
				if p.X < blk.XLo || p.X > blk.XHi {
					return false
				}
			}
			if blk.RetiredAt && !blk.Initial && blk.YRet < blk.YAct {
				return false
			}
			// Points must be y-sorted within a block (the storage order
			// smallstruct relies on for nothing, but the construction
			// promises it).
			for j := 1; j < len(blk.Points); j++ {
				if blk.Points[j].YLess(blk.Points[j-1]) {
					return false
				}
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}
