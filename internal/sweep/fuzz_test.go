package sweep

import (
	"encoding/binary"
	"testing"

	"rangesearch/internal/geom"
)

// FuzzSchemeQuery decodes an arbitrary byte string into a point set and a
// 3-sided query, builds the sweep scheme, and checks the answer against
// brute force. Run with `go test -fuzz=FuzzSchemeQuery ./internal/sweep`.
func FuzzSchemeQuery(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint8(4), uint8(2))
	f.Add(make([]byte, 64), uint8(2), uint8(3))
	f.Fuzz(func(t *testing.T, raw []byte, b8, alpha8 uint8) {
		b := 2 + int(b8)%14
		alpha := 2 + int(alpha8)%4
		// Decode up to 200 points of 2 bytes each (tiny coordinates make
		// duplicates and ties common — the interesting cases).
		var pts []geom.Point
		for i := 0; i+2 <= len(raw) && len(pts) < 200; i += 2 {
			pts = append(pts, geom.Point{X: int64(raw[i] % 32), Y: int64(raw[i+1] % 32)})
		}
		var qa, qb, qc int64
		if len(raw) >= 6 {
			qa = int64(binary.LittleEndian.Uint16(raw[0:]) % 40)
			qb = qa + int64(raw[2]%16)
			qc = int64(raw[4] % 40)
		}
		s, err := Build(pts, b, alpha)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		q := geom.Query3{XLo: qa, XHi: qb, YLo: qc}
		got, k := s.Query3(nil, q)
		want := map[geom.Point]int{}
		total := 0
		for _, p := range pts {
			if q.Contains(p) {
				want[p]++
				total++
			}
		}
		gotCnt := map[geom.Point]int{}
		for _, p := range got {
			gotCnt[p]++
		}
		if len(gotCnt) != len(want) {
			t.Fatalf("query %v: distinct %d vs %d", q, len(gotCnt), len(want))
		}
		for p, c := range want {
			if gotCnt[p] != c {
				t.Fatalf("query %v: point %v count %d vs %d", q, p, gotCnt[p], c)
			}
		}
		tb := (total + b - 1) / b
		if k > alpha*alpha*tb+alpha+1 {
			t.Fatalf("query %v: %d blocks exceeds Theorem 4 bound", q, k)
		}
	})
}
