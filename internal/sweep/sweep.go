// Package sweep implements the 3-sided indexing scheme of Section 2.2.1 of
// Arge, Samoladas & Vitter (PODS 1999): a sweep-line construction that
// places N points into at most n + n/(α−1) blocks of B points (redundancy
// r ≤ 1 + 1/(α−1)) such that every 3-sided query (a, b, c) — a ≤ x ≤ b,
// y ≥ c — is covered by at most α²·t + α + 1 blocks, i.e. constant access
// overhead A ≤ α² + α + 1.
//
// Construction: points are first partitioned by x into n initial blocks. A
// horizontal sweep line rises through the points; a block is "active" while
// it still has points above the line, and the invariant is maintained that
// among any α consecutive active blocks at least one holds ≥ B/α points
// above the line. When α consecutive active blocks all fall below B/α live
// points, they are coalesced: a new block is created holding exactly their
// live points (< B in total), the α old blocks are retired, and the new
// block takes their place in the linear order.
//
// Each block is annotated with its x-range and activity y-interval — the
// "catalog" information which internal/smallstruct packs into O(1) catalog
// blocks to answer queries in O(t + 1) I/Os (Lemma 1 of the paper).
package sweep

import (
	"fmt"
	"sort"

	"rangesearch/internal/geom"
)

// Block is one block of the scheme together with its catalog metadata.
type Block struct {
	// Points is the block's full contents (at most B points), sorted by
	// ascending y. Blocks retain their contents forever; queries filter.
	Points []geom.Point
	// XLo, XHi is the block's x-range.
	XLo, XHi int64
	// Initial marks the blocks of the starting x-partition, which are
	// active from the beginning of the sweep.
	Initial bool
	// YAct is the sweep position at which the block was created; the block
	// is active for query thresholds c > YAct. Meaningless if Initial.
	YAct int64
	// Retired y-position; the block is active for thresholds c ≤ YRet.
	// Meaningless unless RetiredAt is true.
	YRet      int64
	RetiredAt bool
}

// ActiveFor reports whether the block was active when the sweep line stood
// at threshold c (i.e. exactly the points with y ≥ c were above the line).
func (b *Block) ActiveFor(c int64) bool {
	if !b.Initial && c <= b.YAct {
		return false
	}
	return !b.RetiredAt || c <= b.YRet
}

// Scheme is a constructed 3-sided indexing scheme.
type Scheme struct {
	b      int
	alpha  int
	n      int // number of points
	maxY   int64
	blocks []Block
}

// Build constructs the scheme for the given points with block size b ≥ 2
// and coalescing parameter alpha ≥ 2. The input slice is not modified.
func Build(points []geom.Point, b, alpha int) (*Scheme, error) {
	if b < 2 {
		return nil, fmt.Errorf("sweep: block size %d < 2", b)
	}
	if alpha < 2 {
		return nil, fmt.Errorf("sweep: alpha %d < 2", alpha)
	}
	s := &Scheme{b: b, alpha: alpha, n: len(points)}
	if len(points) == 0 {
		return s, nil
	}

	pts := make([]geom.Point, len(points))
	copy(pts, points)
	geom.SortByX(pts)
	s.maxY = pts[0].Y
	for _, p := range pts {
		if p.Y > s.maxY {
			s.maxY = p.Y
		}
	}

	// Initial x-partition into blocks of b points.
	var head, tail *entry
	ptEntry := make([]*entry, len(pts))
	for lo := 0; lo < len(pts); lo += b {
		hi := min(lo+b, len(pts))
		blk := pts[lo:hi]
		byY := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			byY = append(byY, i)
		}
		sort.Slice(byY, func(i, j int) bool { return pts[byY[i]].YLess(pts[byY[j]]) })
		stored := make([]geom.Point, len(byY))
		for i, pid := range byY {
			stored[i] = pts[pid]
		}
		s.blocks = append(s.blocks, Block{
			Points:  stored,
			XLo:     blk[0].X,
			XHi:     blk[len(blk)-1].X,
			Initial: true,
		})
		e := &entry{
			blockIdx: len(s.blocks) - 1,
			pids:     byY,
			live:     len(byY),
			xlo:      blk[0].X,
			xhi:      blk[len(blk)-1].X,
		}
		for _, pid := range byY {
			ptEntry[pid] = e
		}
		if tail == nil {
			head, tail = e, e
		} else {
			tail.next, e.prev = e, tail
			tail = e
		}
	}

	// Sweep: process points in ascending y, whole y-groups at a time.
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return pts[order[i]].YLess(pts[order[j]]) })

	for gi := 0; gi < len(order); {
		y := pts[order[gi]].Y
		var touched []*entry
		for ; gi < len(order) && pts[order[gi]].Y == y; gi++ {
			e := ptEntry[order[gi]]
			e.live--
			if !e.queued {
				e.queued = true
				touched = append(touched, e)
			}
		}
		if gi == len(order) {
			// Final group: no threshold above it is meaningful, skip
			// invariant restoration (it would only create empty blocks).
			break
		}
		queue := touched
		for len(queue) > 0 {
			e := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			e.queued = false
			if e.retired {
				continue
			}
			if e.live == 0 {
				// A block with no points above the line is no longer
				// active: retire it and splice it out. Its neighbours may
				// now form a light run, so re-examine them.
				s.retire(e, y, &head)
				for _, nb := range []*entry{e.prev, e.next} {
					if nb != nil && !nb.retired && !nb.queued {
						nb.queued = true
						queue = append(queue, nb)
					}
				}
				continue
			}
			if !s.light(e) {
				continue
			}
			run := s.lightRun(e)
			for len(run) >= alpha {
				ne := s.coalesce(run[:alpha], y, pts, ptEntry, &head)
				rest := run[alpha:]
				switch {
				case s.light(ne):
					run = s.lightRun(ne)
				case len(rest) > 0:
					// The merged block is heavy but the tail of the run is
					// still light and consecutive; keep restoring there.
					run = s.lightRun(rest[0])
				default:
					run = nil
				}
			}
		}
	}
	return s, nil
}

// retire marks e inactive as of sweep position y and splices it out of the
// active list.
func (s *Scheme) retire(e *entry, y int64, head **entry) {
	e.retired = true
	blk := &s.blocks[e.blockIdx]
	blk.RetiredAt = true
	blk.YRet = y
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		*head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
}

// entry is an active block during construction.
type entry struct {
	prev, next *entry
	blockIdx   int
	pids       []int // point ids sorted by ascending y (live = suffix with y > sweep)
	live       int
	xlo, xhi   int64
	retired    bool
	queued     bool
}

// light reports whether e has fewer than B/α live points.
func (s *Scheme) light(e *entry) bool { return e.live*s.alpha < s.b }

// lightRun returns the maximal run of consecutive light active entries
// containing e, in linear order.
func (s *Scheme) lightRun(e *entry) []*entry {
	start := e
	for start.prev != nil && s.light(start.prev) {
		start = start.prev
	}
	var run []*entry
	for cur := start; cur != nil && s.light(cur); cur = cur.next {
		run = append(run, cur)
	}
	return run
}

// coalesce merges the given consecutive light entries (processed through
// sweep position y) into a new active block and returns its entry.
func (s *Scheme) coalesce(run []*entry, y int64, pts []geom.Point, ptEntry []*entry, head **entry) *entry {
	var livePids []int
	xlo, xhi := run[0].xlo, run[0].xhi
	for _, e := range run {
		for _, pid := range e.pids {
			if pts[pid].Y > y {
				livePids = append(livePids, pid)
			}
		}
		if e.xlo < xlo {
			xlo = e.xlo
		}
		if e.xhi > xhi {
			xhi = e.xhi
		}
	}
	sort.Slice(livePids, func(i, j int) bool { return pts[livePids[i]].YLess(pts[livePids[j]]) })
	stored := make([]geom.Point, len(livePids))
	for i, pid := range livePids {
		stored[i] = pts[pid]
	}
	s.blocks = append(s.blocks, Block{
		Points: stored,
		XLo:    xlo,
		XHi:    xhi,
		YAct:   y,
	})
	ne := &entry{
		blockIdx: len(s.blocks) - 1,
		pids:     livePids,
		live:     len(livePids),
		xlo:      xlo,
		xhi:      xhi,
	}
	for _, pid := range livePids {
		ptEntry[pid] = ne
	}
	// Retire the run and splice in the new entry.
	first, last := run[0], run[len(run)-1]
	for _, e := range run {
		e.retired = true
		blk := &s.blocks[e.blockIdx]
		blk.RetiredAt = true
		blk.YRet = y
	}
	ne.prev = first.prev
	ne.next = last.next
	if ne.prev != nil {
		ne.prev.next = ne
	} else {
		*head = ne
	}
	if ne.next != nil {
		ne.next.prev = ne
	}
	return ne
}

// B returns the block size.
func (s *Scheme) B() int { return s.b }

// Alpha returns the coalescing parameter.
func (s *Scheme) Alpha() int { return s.alpha }

// NumPoints returns N.
func (s *Scheme) NumPoints() int { return s.n }

// NumBlocks returns the total number of blocks created.
func (s *Scheme) NumBlocks() int { return len(s.blocks) }

// BlockSize returns B (indexability.Scheme interface).
func (s *Scheme) BlockSize() int { return s.b }

// Blocks exposes the blocks with their catalog metadata.
func (s *Scheme) Blocks() []Block { return s.blocks }

// MaxY returns the largest y-coordinate indexed.
func (s *Scheme) MaxY() int64 { return s.maxY }

// Redundancy returns r = B·|blocks|/N.
func (s *Scheme) Redundancy() float64 {
	if s.n == 0 {
		return 0
	}
	return float64(s.b*len(s.blocks)) / float64(s.n)
}

// CoverIndexes returns the indexes of the blocks covering the 3-sided query
// q: the blocks active at threshold q.YLo whose x-ranges intersect
// [q.XLo, q.XHi].
func (s *Scheme) CoverIndexes(q geom.Query3) []int {
	if q.Empty() || s.n == 0 || q.YLo > s.maxY {
		return nil
	}
	var out []int
	for i := range s.blocks {
		b := &s.blocks[i]
		if b.ActiveFor(q.YLo) && b.XLo <= q.XHi && b.XHi >= q.XLo {
			out = append(out, i)
		}
	}
	return out
}

// Query3 returns all indexed points satisfying q, appended to dst, along
// with the number of blocks read.
func (s *Scheme) Query3(dst []geom.Point, q geom.Query3) ([]geom.Point, int) {
	idx := s.CoverIndexes(q)
	for _, i := range idx {
		dst = geom.Filter3(dst, s.blocks[i].Points, q)
	}
	return dst, len(idx)
}

// Cover implements indexability.Scheme for 3-sided workloads: the rectangle
// must be open-topped (YHi = MaxCoord).
func (s *Scheme) Cover(q geom.Rect) ([][]geom.Point, error) {
	if q.YHi != geom.MaxCoord {
		return nil, fmt.Errorf("sweep: query %v is not 3-sided (YHi must be MaxCoord)", q)
	}
	idx := s.CoverIndexes(geom.Query3{XLo: q.XLo, XHi: q.XHi, YLo: q.YLo})
	out := make([][]geom.Point, len(idx))
	for i, bi := range idx {
		out[i] = s.blocks[bi].Points
	}
	return out, nil
}
