package core_test

import (
	"fmt"
	"log"

	"rangesearch/internal/core"
	"rangesearch/internal/eio"
	"rangesearch/internal/epst"
	"rangesearch/internal/geom"
	"rangesearch/internal/range4"
)

// ExampleThreeSided builds the paper's optimal 3-sided index and answers
// an open-topped query.
func ExampleThreeSided() {
	store := eio.NewMemStore(1024) // B = 64 points per block
	idx, err := core.BuildThreeSided(store, epst.Options{}, []geom.Point{
		{X: 1, Y: 10}, {X: 2, Y: 90}, {X: 3, Y: 50}, {X: 8, Y: 70},
	})
	if err != nil {
		log.Fatal(err)
	}
	// All points with 1 ≤ x ≤ 5 and y ≥ 40.
	res, err := idx.Query3(nil, geom.Query3{XLo: 1, XHi: 5, YLo: 40})
	if err != nil {
		log.Fatal(err)
	}
	geom.SortByX(res)
	fmt.Println(res)
	// Output: [(2,90) (3,50)]
}

// ExampleFourSided answers a general window query.
func ExampleFourSided() {
	store := eio.NewMemStore(1024)
	idx, err := core.BuildFourSided(store, range4.Options{}, []geom.Point{
		{X: 1, Y: 1}, {X: 5, Y: 5}, {X: 9, Y: 9},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := idx.Query(nil, geom.Rect{XLo: 2, XHi: 10, YLo: 2, YHi: 6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	// Output: [(5,5)]
}

// ExampleSynced shares one index between goroutines.
func ExampleSynced() {
	store := eio.NewMemStore(1024)
	inner, err := core.NewThreeSided(store, epst.Options{})
	if err != nil {
		log.Fatal(err)
	}
	idx := core.NewSynced(inner)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := int64(0); i < 100; i++ {
			if err := idx.Insert(geom.Point{X: i, Y: i * i}); err != nil {
				log.Fatal(err)
			}
		}
	}()
	<-done
	n, err := idx.Len()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(n)
	// Output: 100
}
