package core

import (
	"errors"
	"fmt"
	"testing"

	"rangesearch/internal/eio"
	"rangesearch/internal/epst"
	"rangesearch/internal/geom"
)

func newDurableThreeSided(t *testing.T, walPages int) (*Durable, *eio.TxStore, *eio.MemStore) {
	t.Helper()
	mem := eio.NewMemStore(256)
	tx, err := eio.NewTxStore(mem, eio.TxOptions{WALPages: walPages})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := NewThreeSided(tx, epst.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return NewDurable(idx, tx), tx, mem
}

// TestDurableUpdates checks that decorated updates commit, failed updates
// roll back cleanly, and queries see the committed state.
func TestDurableUpdates(t *testing.T) {
	d, _, _ := newDurableThreeSided(t, 64)
	for i := 0; i < 10; i++ {
		if err := d.Insert(geom.Point{X: int64(i), Y: int64(i * 3)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Insert(geom.Point{X: 4, Y: 12}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate insert: %v", err)
	}
	if n, _ := d.Len(); n != 10 {
		t.Fatalf("Len = %d, want 10", n)
	}
	found, err := d.Delete(geom.Point{X: 4, Y: 12})
	if err != nil || !found {
		t.Fatalf("delete: (%v, %v)", found, err)
	}
	pts, err := d.Query(nil, geom.Rect{XLo: 0, XHi: 100, YLo: 0, YHi: geom.MaxCoord})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 9 {
		t.Fatalf("query returned %d points, want 9", len(pts))
	}
}

// TestDurableBatch checks group commit: the whole batch is one transaction,
// and a failing batch rolls back every update inside it.
func TestDurableBatch(t *testing.T) {
	d, tx, _ := newDurableThreeSided(t, 64)
	err := d.Batch(func(idx Index) error {
		for i := 0; i < 5; i++ {
			if err := idx.Insert(geom.Point{X: int64(i), Y: int64(i)}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := d.Len(); n != 5 {
		t.Fatalf("Len after batch = %d, want 5", n)
	}
	if tx.InTx() {
		t.Fatal("transaction left open after batch")
	}

	// A failing batch must leave the index exactly as before.
	boom := fmt.Errorf("boom")
	err = d.Batch(func(idx Index) error {
		if err := idx.Insert(geom.Point{X: 100, Y: 100}); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("batch error: %v", err)
	}
	if n, _ := d.Len(); n != 5 {
		t.Fatalf("Len after failed batch = %d, want 5", n)
	}
	pts, err := d.Query(nil, geom.Rect{XLo: 100, XHi: 100, YLo: 100, YHi: geom.MaxCoord})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 0 {
		t.Fatalf("rolled-back insert is visible: %v", pts)
	}
}

// TestDurableDisabledFree pins the no-WAL fast path: with the transaction
// layer disabled, decorated updates cost exactly the same backing-store
// I/Os as undecorated ones.
func TestDurableDisabledFree(t *testing.T) {
	run := func(disabled bool) eio.Stats {
		mem := eio.NewMemStore(256)
		tx, err := eio.NewTxStore(mem, eio.TxOptions{Disabled: disabled, WALPages: 64})
		if err != nil {
			t.Fatal(err)
		}
		idx, err := NewThreeSided(tx, epst.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var target Index = idx
		if disabled {
			target = NewDurable(idx, tx)
		}
		mem.ResetStats()
		for i := 0; i < 8; i++ {
			if err := target.Insert(geom.Point{X: int64(i), Y: int64(i)}); err != nil {
				t.Fatal(err)
			}
		}
		return mem.Stats()
	}
	plain := run(false)
	// run(false) builds on an ENABLED tx store but inserts undecorated
	// (outside transactions), so both runs measure raw structure I/O.
	decorated := run(true)
	if plain != decorated {
		t.Fatalf("disabled Durable is not free:\nplain:     %+v\ndecorated: %+v", plain, decorated)
	}
}
