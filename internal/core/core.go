// Package core is the public facade of the library: it unifies the paper's
// optimal structures (the external priority search tree for 3-sided
// queries, Theorem 6, and the layered structure for general 4-sided
// queries, Theorem 7) and the baseline structures behind one dynamic
// point-index interface.
//
// Pick a structure by workload:
//
//   - ThreeSided (external priority search tree): 3-sided queries
//     (x ∈ [a,b], y ≥ c) in O(log_B N + t) I/Os, O(n) blocks, O(log_B N)
//     updates. Also the right choice for interval stabbing / temporal
//     "current version" workloads via the diagonal-corner reduction
//     (see internal/interval).
//   - FourSided: general window queries in O(log_B N + t) reporting I/Os
//     (plus the additive entry-search term discussed in internal/range4),
//     at an O(log n / log log_B N) space factor.
//   - The baselines in internal/baseline, for comparison.
//
// All structures store a *set* of distinct points whose coordinates avoid
// the geom.MinCoord / geom.MaxCoord sentinels, and live entirely on an
// eio.Store — nothing is cached in memory between operations, so measured
// store I/Os are the structures' true external-memory cost.
package core

import (
	"errors"
	"fmt"

	"rangesearch/internal/baseline"
	"rangesearch/internal/eio"
	"rangesearch/internal/epst"
	"rangesearch/internal/geom"
	"rangesearch/internal/range4"
)

// ErrDuplicate reports insertion of a point already present.
var ErrDuplicate = errors.New("core: duplicate point")

// ErrCoordRange reports a point using a reserved sentinel coordinate.
var ErrCoordRange = errors.New("core: coordinate out of storable range")

// Index is a dynamic set of distinct planar points under orthogonal range
// reporting. A 3-sided query is expressed with YHi = geom.MaxCoord.
type Index interface {
	Insert(p geom.Point) error
	Delete(p geom.Point) (bool, error)
	Query(dst []geom.Point, q geom.Rect) ([]geom.Point, error)
	Len() (int, error)
	Destroy() error
}

// Interface conformance of the baselines.
var (
	_ Index = (*baseline.Scan)(nil)
	_ Index = (*baseline.XTree)(nil)
	_ Index = (*baseline.KDTree)(nil)
	_ Index = (*baseline.RTree)(nil)
)

func checkCoord(p geom.Point) error {
	if p.X == geom.MinCoord || p.X == geom.MaxCoord || p.Y == geom.MinCoord || p.Y == geom.MaxCoord {
		return fmt.Errorf("core: %v: %w", p, ErrCoordRange)
	}
	return nil
}

// ThreeSided is the external priority search tree (Theorem 6) behind the
// Index interface. Query answers open-topped rectangles (YHi = MaxCoord)
// at the optimal I/O bound; bounded-top rectangles are answered correctly
// by filtering, reading O(points above YLo) rather than O(points inside) —
// use FourSided when bounded-top queries dominate.
type ThreeSided struct {
	t *epst.Tree
}

var _ Index = (*ThreeSided)(nil)

// NewThreeSided creates an empty structure on store.
func NewThreeSided(store eio.Store, opts epst.Options) (*ThreeSided, error) {
	t, err := epst.Create(store, opts)
	if err != nil {
		return nil, err
	}
	return &ThreeSided{t: t}, nil
}

// BuildThreeSided bulk-loads pts (distinct, non-sentinel coordinates).
func BuildThreeSided(store eio.Store, opts epst.Options, pts []geom.Point) (*ThreeSided, error) {
	for _, p := range pts {
		if err := checkCoord(p); err != nil {
			return nil, err
		}
	}
	t, err := epst.Build(store, opts, pts)
	if err != nil {
		return nil, wrapDup(err)
	}
	return &ThreeSided{t: t}, nil
}

// OpenThreeSided re-attaches to a structure previously created on store.
func OpenThreeSided(store eio.Store, hdr eio.PageID) (*ThreeSided, error) {
	t, err := epst.Open(store, hdr, 0)
	if err != nil {
		return nil, err
	}
	return &ThreeSided{t: t}, nil
}

func wrapDup(err error) error {
	if errors.Is(err, epst.ErrDuplicate) || errors.Is(err, range4.ErrDuplicate) {
		return fmt.Errorf("%w", errors.Join(ErrDuplicate, err))
	}
	if errors.Is(err, range4.ErrCoordRange) {
		return fmt.Errorf("%w", errors.Join(ErrCoordRange, err))
	}
	return err
}

// HeaderID identifies the structure on its store.
func (s *ThreeSided) HeaderID() eio.PageID { return s.t.HeaderID() }

// Insert implements Index.
func (s *ThreeSided) Insert(p geom.Point) error {
	if err := checkCoord(p); err != nil {
		return err
	}
	return wrapDup(s.t.Insert(p))
}

// Delete implements Index.
func (s *ThreeSided) Delete(p geom.Point) (bool, error) {
	if err := checkCoord(p); err != nil {
		return false, err
	}
	return s.t.Delete(p)
}

// Query implements Index.
func (s *ThreeSided) Query(dst []geom.Point, q geom.Rect) ([]geom.Point, error) {
	res, err := s.t.Query3(nil, geom.Query3{XLo: q.XLo, XHi: q.XHi, YLo: q.YLo})
	if err != nil {
		return dst, err
	}
	for _, p := range res {
		if p.Y <= q.YHi {
			dst = append(dst, p)
		}
	}
	return dst, nil
}

// Query3 answers a native 3-sided query at the optimal bound.
func (s *ThreeSided) Query3(dst []geom.Point, q geom.Query3) ([]geom.Point, error) {
	return s.t.Query3(dst, q)
}

// MaxY returns the highest stored point.
func (s *ThreeSided) MaxY() (geom.Point, bool, error) { return s.t.MaxY() }

// Len implements Index.
func (s *ThreeSided) Len() (int, error) { return s.t.Len() }

// Destroy implements Index.
func (s *ThreeSided) Destroy() error { return s.t.Destroy() }

// CheckInvariants audits the underlying structure.
func (s *ThreeSided) CheckInvariants() error { return s.t.CheckInvariants() }

// Tree exposes the underlying priority search tree for advanced use.
func (s *ThreeSided) Tree() *epst.Tree { return s.t }

// FourSided is the layered 4-sided structure (Theorem 7) behind the Index
// interface.
type FourSided struct {
	t *range4.Tree
}

var _ Index = (*FourSided)(nil)

// NewFourSided creates an empty structure on store.
func NewFourSided(store eio.Store, opts range4.Options) (*FourSided, error) {
	t, err := range4.Create(store, opts)
	if err != nil {
		return nil, err
	}
	return &FourSided{t: t}, nil
}

// BuildFourSided bulk-loads pts (distinct, non-sentinel coordinates).
func BuildFourSided(store eio.Store, opts range4.Options, pts []geom.Point) (*FourSided, error) {
	t, err := range4.Build(store, opts, pts)
	if err != nil {
		return nil, wrapDup(err)
	}
	return &FourSided{t: t}, nil
}

// OpenFourSided re-attaches to a structure previously created on store.
func OpenFourSided(store eio.Store, hdr eio.PageID) (*FourSided, error) {
	t, err := range4.Open(store, hdr)
	if err != nil {
		return nil, err
	}
	return &FourSided{t: t}, nil
}

// HeaderID identifies the structure on its store.
func (s *FourSided) HeaderID() eio.PageID { return s.t.HeaderID() }

// Insert implements Index.
func (s *FourSided) Insert(p geom.Point) error { return wrapDup(s.t.Insert(p)) }

// Delete implements Index.
func (s *FourSided) Delete(p geom.Point) (bool, error) { return s.t.Delete(p) }

// Query implements Index.
func (s *FourSided) Query(dst []geom.Point, q geom.Rect) ([]geom.Point, error) {
	return s.t.Query4(dst, q)
}

// Len implements Index.
func (s *FourSided) Len() (int, error) { return s.t.Len() }

// Destroy implements Index.
func (s *FourSided) Destroy() error { return s.t.Destroy() }

// CheckInvariants audits the underlying structure.
func (s *FourSided) CheckInvariants() error { return s.t.CheckInvariants() }

// Tree exposes the underlying structure for advanced use.
func (s *FourSided) Tree() *range4.Tree { return s.t }
