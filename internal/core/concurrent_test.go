package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rangesearch/internal/eio"
	"rangesearch/internal/epst"
	"rangesearch/internal/geom"
)

// newConcurrentThreeSided builds a ThreeSided on a fresh SnapStore over a
// MemStore and wraps it in a Concurrent (volatile stack).
func newConcurrentThreeSided(t *testing.T, opts ConcurrentOptions) (*Concurrent, *eio.SnapStore, *eio.MemStore) {
	t.Helper()
	mem := eio.NewMemStore(512)
	snap := eio.NewSnapStore(mem, 0)
	idx, err := NewThreeSided(snap, epst.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hdr := idx.HeaderID()
	if _, err := snap.Commit(); err != nil { // publish the empty structure
		t.Fatal(err)
	}
	open := func(s eio.Store) (Index, error) { return OpenThreeSided(s, hdr) }
	c, err := NewConcurrent(idx, snap, open, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c, snap, mem
}

// newConcurrentDurableThreeSided builds the durable stack:
// Concurrent(Durable(ThreeSided)) on SnapStore(TxStore(MemStore)).
func newConcurrentDurableThreeSided(t *testing.T, walPages int) (*Concurrent, *eio.SnapStore, *eio.TxStore) {
	t.Helper()
	mem := eio.NewMemStore(512)
	tx, err := eio.NewTxStore(mem, eio.TxOptions{WALPages: walPages})
	if err != nil {
		t.Fatal(err)
	}
	snap := eio.NewSnapStore(tx, 0)
	idx, err := NewThreeSided(snap, epst.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hdr := idx.HeaderID()
	if _, err := snap.Commit(); err != nil {
		t.Fatal(err)
	}
	open := func(s eio.Store) (Index, error) { return OpenThreeSided(s, hdr) }
	c, err := NewConcurrent(NewDurable(idx, tx), snap, open, ConcurrentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return c, snap, tx
}

// TestConcurrentBasic exercises the Index surface serially: inserts,
// benign duplicate errors, deletes, queries and Len through snapshots.
func TestConcurrentBasic(t *testing.T) {
	c, _, _ := newConcurrentThreeSided(t, ConcurrentOptions{})
	for i := 0; i < 20; i++ {
		if err := c.Insert(geom.Point{X: int64(i), Y: int64(i * 2)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Insert(geom.Point{X: 3, Y: 6}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate insert: %v", err)
	}
	if n, err := c.Len(); err != nil || n != 20 {
		t.Fatalf("Len = (%d, %v), want 20", n, err)
	}
	found, err := c.Delete(geom.Point{X: 3, Y: 6})
	if err != nil || !found {
		t.Fatalf("delete: (%v, %v)", found, err)
	}
	if found, _ := c.Delete(geom.Point{X: 3, Y: 6}); found {
		t.Fatal("second delete of same point reported found")
	}
	pts, err := c.Query(nil, geom.Rect{XLo: 0, XHi: 100, YLo: 0, YHi: geom.MaxCoord})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 19 {
		t.Fatalf("query returned %d points, want 19", len(pts))
	}
}

// TestConcurrentSnapshotIsolation checks a held snapshot ignores later
// commits while new snapshots see them, and that epochs advance.
func TestConcurrentSnapshotIsolation(t *testing.T) {
	c, _, _ := newConcurrentThreeSided(t, ConcurrentOptions{})
	for i := 0; i < 10; i++ {
		if err := c.Insert(geom.Point{X: int64(i), Y: 1}); err != nil {
			t.Fatal(err)
		}
	}
	old, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close()

	for i := 10; i < 30; i++ {
		if err := c.Insert(geom.Point{X: int64(i), Y: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := old.Len(); n != 10 {
		t.Fatalf("held snapshot Len = %d, want 10", n)
	}
	all := geom.Rect{XLo: 0, XHi: 100, YLo: 0, YHi: geom.MaxCoord}
	if pts, _ := old.Query(nil, all); len(pts) != 10 {
		t.Fatalf("held snapshot sees %d points, want 10", len(pts))
	}
	fresh, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if fresh.Epoch() <= old.Epoch() {
		t.Fatalf("fresh epoch %d not after held epoch %d", fresh.Epoch(), old.Epoch())
	}
	if pts, _ := fresh.Query(nil, all); len(pts) != 30 {
		t.Fatalf("fresh snapshot sees %d points, want 30", len(pts))
	}
}

// TestConcurrentGroupCommit runs parallel writers and checks every insert
// lands, the final state is complete, and at least one multi-op batch was
// coalesced (under a recorder that counts batches).
func TestConcurrentGroupCommit(t *testing.T) {
	rec := &countingRecorder{}
	c, _, _ := newConcurrentThreeSided(t, ConcurrentOptions{Recorder: rec})
	const (
		writers = 8
		per     = 50
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				p := geom.Point{X: int64(w*per + i), Y: int64(w)}
				if err := c.Insert(p); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n, err := c.Len(); err != nil || n != writers*per {
		t.Fatalf("Len = (%d, %v), want %d", n, err, writers*per)
	}
	if got := rec.ops.Load(); got != writers*per {
		t.Fatalf("recorder saw %d committed ops, want %d", got, writers*per)
	}
	if rec.batches.Load() == 0 {
		t.Fatal("no batches recorded")
	}
	t.Logf("committed %d ops in %d batches (max batch %d)",
		rec.ops.Load(), rec.batches.Load(), rec.maxBatch.Load())
}

type countingRecorder struct {
	batches  atomic.Int64
	ops      atomic.Int64
	maxBatch atomic.Int64
	waits    atomic.Int64
}

func (r *countingRecorder) RecordLockWait(d time.Duration) { r.waits.Add(1) }

func (r *countingRecorder) RecordBatch(size int, apply time.Duration) {
	r.batches.Add(1)
	r.ops.Add(int64(size))
	for {
		cur := r.maxBatch.Load()
		if int64(size) <= cur || r.maxBatch.CompareAndSwap(cur, int64(size)) {
			return
		}
	}
}

// TestConcurrentDurableGroupCommit checks the durable stack: batches are
// atomic WAL transactions, benign per-op errors do not poison the batch,
// and a WAL-overflowing batch fails without corrupting the index.
func TestConcurrentDurableGroupCommit(t *testing.T) {
	c, _, tx := newConcurrentDurableThreeSided(t, 256)
	const (
		writers = 4
		per     = 25
	)
	var wg sync.WaitGroup
	var dups atomic.Int64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				// Writers deliberately collide on every second point: the
				// loser's ErrDuplicate must stay its own, not the batch's.
				x := int64(w*per + i)
				if i%2 == 1 {
					x = int64(i)
				}
				err := c.Insert(geom.Point{X: x, Y: 7})
				if errors.Is(err, ErrDuplicate) {
					dups.Add(1)
				} else if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if tx.InTx() {
		t.Fatal("transaction left open after group commits")
	}
	n, err := c.Len()
	if err != nil {
		t.Fatal(err)
	}
	if int64(n)+dups.Load() != writers*per {
		t.Fatalf("Len %d + dups %d != %d submitted", n, dups.Load(), writers*per)
	}
}

// TestConcurrentQueryIOParity pins the acceptance bound: a snapshot query
// costs exactly the same store I/Os as the identical query on the same
// structure queried serially.
func TestConcurrentQueryIOParity(t *testing.T) {
	pts := make([]geom.Point, 0, 4000)
	for i := 0; i < 4000; i++ {
		pts = append(pts, geom.Point{X: int64(i * 3), Y: int64((i * 7919) % 10000)})
	}

	// Serial twin.
	serialMem := eio.NewMemStore(512)
	serial, err := BuildThreeSided(serialMem, epst.Options{}, pts)
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent stack over an identically-built tree.
	mem := eio.NewMemStore(512)
	snap := eio.NewSnapStore(mem, 0)
	idx, err := BuildThreeSided(snap, epst.Options{}, pts)
	if err != nil {
		t.Fatal(err)
	}
	hdr := idx.HeaderID()
	if _, err := snap.Commit(); err != nil {
		t.Fatal(err)
	}
	c, err := NewConcurrent(idx, snap, func(s eio.Store) (Index, error) { return OpenThreeSided(s, hdr) }, ConcurrentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sn, err := c.Snapshot() // open the view before measuring
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()

	queries := []geom.Rect{
		{XLo: 0, XHi: 1000, YLo: 5000, YHi: geom.MaxCoord},
		{XLo: 3000, XHi: 9000, YLo: 100, YHi: geom.MaxCoord},
		{XLo: -50, XHi: -1, YLo: 0, YHi: geom.MaxCoord},
		{XLo: 0, XHi: 12000, YLo: 9000, YHi: geom.MaxCoord},
	}
	for qi, q := range queries {
		serialMem.ResetStats()
		want, err := serial.Query(nil, q)
		if err != nil {
			t.Fatal(err)
		}
		wantIO := serialMem.Stats().Reads

		mem.ResetStats()
		got, err := sn.Query(nil, q)
		if err != nil {
			t.Fatal(err)
		}
		gotIO := mem.Stats().Reads + snap.SnapStats().VersionReads

		if len(got) != len(want) {
			t.Fatalf("query %d: %d points vs serial %d", qi, len(got), len(want))
		}
		if gotIO != wantIO {
			t.Fatalf("query %d: snapshot read %d I/Os, serial %d", qi, gotIO, wantIO)
		}
	}
}

// TestConcurrentSoak is the concurrency soak: one writer inserting a known
// monotone sequence, N reader goroutines querying snapshots, all under the
// single-writer linearizability check — every read observes a state equal
// to a prefix of the committed inserts, the epoch→prefix mapping is a
// function (two reads at one epoch agree), prefixes are monotone in
// epoch, and each reader's epochs never go backwards.
func TestConcurrentSoak(t *testing.T) {
	total := 2000
	if testing.Short() {
		total = 400
	}
	const readers = 4

	c, _, _ := newConcurrentThreeSided(t, ConcurrentOptions{})
	all := geom.Rect{XLo: 0, XHi: int64(total + 1), YLo: 0, YHi: geom.MaxCoord}

	type obs struct {
		epoch uint64
		k     int
	}
	var (
		wg       sync.WaitGroup
		done     atomic.Bool
		perR     = make([][]obs, readers)
		readErrs = make(chan error, readers)
	)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var last obs
			for !done.Load() {
				sn, err := c.Snapshot()
				if err != nil {
					readErrs <- err
					return
				}
				e := sn.Epoch()
				pts, err := sn.Query(nil, all)
				sn.Close()
				if err != nil {
					readErrs <- err
					return
				}
				// The observed state must be exactly the prefix {0..k-1}.
				k := len(pts)
				sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
				for i, p := range pts {
					if p.X != int64(i) || p.Y != int64(i) {
						readErrs <- fmt.Errorf("reader %d epoch %d: position %d holds %v, not a committed prefix", r, e, i, p)
						return
					}
				}
				if e < last.epoch {
					readErrs <- fmt.Errorf("reader %d: epoch %d after %d", r, e, last.epoch)
					return
				}
				if e == last.epoch && k != last.k {
					readErrs <- fmt.Errorf("reader %d: epoch %d read %d then %d points", r, e, last.k, k)
					return
				}
				if k < last.k {
					readErrs <- fmt.Errorf("reader %d: prefix shrank %d -> %d (epochs %d -> %d)", r, last.k, k, last.epoch, e)
					return
				}
				last = obs{epoch: e, k: k}
				perR[r] = append(perR[r], last)
			}
		}(r)
	}

	for i := 0; i < total; i++ {
		if err := c.Insert(geom.Point{X: int64(i), Y: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	done.Store(true)
	wg.Wait()
	close(readErrs)
	for err := range readErrs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	// Cross-reader agreement: the epoch→prefix mapping is one function.
	global := map[uint64]int{}
	reads := 0
	for r := range perR {
		reads += len(perR[r])
		for _, o := range perR[r] {
			if k, ok := global[o.epoch]; ok && k != o.k {
				t.Fatalf("epoch %d observed as both %d and %d points", o.epoch, k, o.k)
			}
			global[o.epoch] = o.k
		}
	}
	// Monotone in epoch across all readers.
	epochs := make([]uint64, 0, len(global))
	for e := range global {
		epochs = append(epochs, e)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	for i := 1; i < len(epochs); i++ {
		if global[epochs[i]] < global[epochs[i-1]] {
			t.Fatalf("prefix shrank between epochs %d (%d) and %d (%d)",
				epochs[i-1], global[epochs[i-1]], epochs[i], global[epochs[i]])
		}
	}
	if n, _ := c.Len(); n != total {
		t.Fatalf("final Len = %d, want %d", n, total)
	}
	t.Logf("soak: %d inserts, %d reads across %d readers, %d distinct epochs observed",
		total, reads, readers, len(global))
}

// TestConcurrentDestroyWithReaders checks a held snapshot survives Destroy
// (deferred frees) while the writer-side structure is gone.
func TestConcurrentDestroyWithReaders(t *testing.T) {
	c, snap, _ := newConcurrentThreeSided(t, ConcurrentOptions{})
	for i := 0; i < 50; i++ {
		if err := c.Insert(geom.Point{X: int64(i), Y: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	sn, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Destroy(); err != nil {
		t.Fatal(err)
	}
	// The snapshot still answers from its epoch.
	pts, err := sn.Query(nil, geom.Rect{XLo: 0, XHi: 100, YLo: 0, YHi: geom.MaxCoord})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 50 {
		t.Fatalf("snapshot after destroy sees %d points, want 50", len(pts))
	}
	sn.Close()
	// Once the pin drains, the deferred frees land on the inner store.
	if _, err := snap.Commit(); err != nil {
		t.Fatal(err)
	}
	if st := snap.SnapStats(); st.PendingFrees != 0 {
		t.Fatalf("deferred frees not reclaimed after close: %+v", st)
	}
}
