package core

import (
	"errors"
	"fmt"
	"time"

	"rangesearch/internal/eio"
	"rangesearch/internal/geom"
	"rangesearch/internal/trace"
	"sync"
)

var (
	// ErrNotPrimary reports a mutation submitted to a node that is not the
	// replication primary: a read-only replica, or a fenced former primary
	// that has observed a higher term. The write was not applied and must be
	// redirected, not retried here.
	ErrNotPrimary = errors.New("core: not primary")
	// ErrReplicationStall reports a group commit that is durable locally but
	// was not acknowledged by the required number of replicas in time. The
	// outcome is UNKNOWN to the client (the write exists on the primary and
	// ships when a replica reconnects), so servers surface it as a timeout,
	// never as a clean failure.
	ErrReplicationStall = errors.New("core: replication stall")
)

// ContentionRecorder receives the serving-layer contention signals emitted
// by Concurrent: how long writers waited to join a group commit and how
// large the committed batches were. obs.Contention implements it; the
// interface lives here so core does not depend on the metrics package.
type ContentionRecorder interface {
	// RecordLockWait observes one writer's wait for commit leadership.
	RecordLockWait(d time.Duration)
	// RecordBatch observes one committed group: its size in logical
	// operations and the time spent applying and committing it.
	RecordBatch(size int, apply time.Duration)
}

// OpenFunc re-attaches an Index to its storage — the reader-side factory
// Concurrent uses to open one Index per snapshot epoch. For the paper's
// structures:
//
//	func(s eio.Store) (core.Index, error) { return core.OpenThreeSided(s, hdr) }
//
// The returned Index is only ever queried (never mutated), and must be safe
// for concurrent queries, which all structures in this repository are: a
// query keeps no mutable state in the Index value, only in the store.
type OpenFunc func(eio.Store) (Index, error)

// ConcurrentOptions configures NewConcurrent.
type ConcurrentOptions struct {
	// MaxBatch caps the number of logical operations coalesced into one
	// group commit (default 64). With a Durable writer every batch is one
	// WAL record, so MaxBatch times the per-op page footprint must fit the
	// TxStore's WAL (eio.ErrTxOverflow fails the batch otherwise).
	MaxBatch int
	// Recorder, when non-nil, receives lock-wait and batch-size signals.
	Recorder ContentionRecorder
	// Tracer, when non-nil, is the TraceStore the writer index performs
	// its page I/O through (the index must have been created or opened ON
	// this store). Group-commit leaders hang a per-operation span sink off
	// it around each traced operation's apply, which is what gives sampled
	// requests their exact block-I/O attribution. Only the single writer
	// ever touches the tracer's sink — readers run on snapshot views —
	// so the swap is race-free under the leadership lock.
	Tracer *eio.TraceStore
}

// Concurrent is the single-writer / multi-reader serving layer over an
// Index stored on an eio.SnapStore:
//
//   - Readers run Query/Len against an epoch-consistent snapshot and never
//     block on writers (nor writers on readers). Query pins the current
//     epoch for its duration; Snapshot hands out a longer-lived pinned
//     view with a stable Epoch stamp.
//   - Writers from any number of goroutines are coalesced into group
//     commits: one leader drains the queue, applies up to MaxBatch
//     operations, and publishes a single new epoch. When the writer Index
//     is a *Durable, the batch runs inside Durable.Batch — one WAL record
//     and one fsync schedule for the whole group.
//
// Per-operation I/O bounds are preserved: a snapshot query reads exactly
// the pages the same query would read serially (version-chain hits cost no
// inner I/O and are counted in eio.SnapStats.VersionReads), and a group
// commit of k updates costs the k updates' page writes plus one commit.
//
// What is and is not linearizable: updates are (the single commit order is
// the linearization); reads are serializable snapshots — a read may lag
// the newest commit by the time it takes to open its view, but every read
// observes some committed prefix of the update history, and epochs observed
// by any single goroutine never go backwards.
type Concurrent struct {
	snap    *eio.SnapStore
	writer  Index
	durable *Durable // non-nil iff writer is a *Durable
	open    OpenFunc
	tracer  *eio.TraceStore // writer-path tracer for span I/O attribution

	maxBatch int
	rec      ContentionRecorder

	// gate, when set, runs after every committed group (locally durable,
	// epoch published) and before the batch's waiters release — the
	// synchronous-replication ack point. An error fails the batch's waiters
	// without undoing the local commit; it should wrap ErrReplicationStall.
	gate func() error

	qmu   sync.Mutex
	queue []*pendingOp

	wmu sync.Mutex // commit leadership: held while a batch is applied

	vmu sync.Mutex
	cur *epochView
}

var _ Index = (*Concurrent)(nil)

type opKind uint8

const (
	opInsert opKind = iota
	opDelete
)

type pendingOp struct {
	kind  opKind
	p     geom.Point
	done  chan struct{}
	found bool
	err   error

	// Tracing state, set only for sampled requests; the zero values cost
	// untraced operations nothing.
	sp  *trace.Span // span the leader records phases and I/O into
	tok *byte       // identity of the submitAll call that enqueued the op
	enq time.Time   // enqueue time, for the queue/leadership phase
}

// epochView is one reader-side Index instance fixed at a pinned epoch,
// shared by every query that arrives while the epoch is current.
type epochView struct {
	epoch uint64
	idx   Index
	refs  int
}

// NewConcurrent builds the serving layer. writer must be an Index whose
// pages live on snap (created or opened ON snap), or a *Durable wrapping
// such an index — then group commits reuse Durable.Batch so one WAL record
// covers the whole batch. open re-attaches read-only Index instances to
// epoch views of snap.
func NewConcurrent(writer Index, snap *eio.SnapStore, open OpenFunc, opts ConcurrentOptions) (*Concurrent, error) {
	if writer == nil || snap == nil || open == nil {
		return nil, fmt.Errorf("core: concurrent: writer, snap and open are all required")
	}
	maxBatch := opts.MaxBatch
	if maxBatch <= 0 {
		maxBatch = 64
	}
	d, _ := writer.(*Durable)
	return &Concurrent{
		snap:     snap,
		writer:   writer,
		durable:  d,
		open:     open,
		tracer:   opts.Tracer,
		maxBatch: maxBatch,
		rec:      opts.Recorder,
	}, nil
}

// Epoch returns the current committed epoch (the stamp new snapshots get).
func (c *Concurrent) Epoch() uint64 { return c.snap.Epoch() }

// AppliedLSN returns the durable log position of the writer's TxStore — the
// coordinate replication staleness is measured in. Monotonic, persistent
// across restarts, and always ≥ the LSN of any already-acknowledged write.
// Zero when the writer is not durable (no WAL, nothing to ship).
func (c *Concurrent) AppliedLSN() uint64 {
	if c.durable == nil {
		return 0
	}
	return c.durable.Tx().AppliedLSN()
}

// SetCommitGate installs the post-commit gate described on the field (nil
// removes it). Install during assembly, before the first write is
// submitted; the setter serializes with group commits but batches already
// past their gate are unaffected.
func (c *Concurrent) SetCommitGate(fn func() error) {
	c.wmu.Lock()
	c.gate = fn
	c.wmu.Unlock()
}

// Barrier acquires commit leadership, runs fn while no group commit can be
// in flight, and releases. While fn runs the writer's store is quiescent —
// the TxStore has no open transaction and its anchors exactly describe the
// on-disk state — which is what a replication bootstrap needs to cut a
// consistent full-store snapshot. Writers queue behind fn (and may shed
// BUSY under admission control); readers are unaffected.
func (c *Concurrent) Barrier(fn func() error) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return fn()
}

// PageSize returns the page size of the backing store — the B of the
// paper's O(log_B N + t/B) bounds, which the serving layer needs to
// compute per-request I/O allowances for slow-query logging.
func (c *Concurrent) PageSize() int { return c.snap.PageSize() }

// --- write path: group commit ------------------------------------------

// Insert implements Index: the point is committed as part of a group batch
// before the call returns.
func (c *Concurrent) Insert(p geom.Point) error {
	op := &pendingOp{kind: opInsert, p: p, done: make(chan struct{})}
	c.submit(op)
	return op.err
}

// Delete implements Index, committed as part of a group batch.
func (c *Concurrent) Delete(p geom.Point) (bool, error) {
	op := &pendingOp{kind: opDelete, p: p, done: make(chan struct{})}
	c.submit(op)
	return op.found, op.err
}

// InsertTraced is Insert with the group-commit machinery recording phase
// timings (queue/leadership wait, execute, WAL append, sync, commit) and
// exact page I/O into sp. A nil sp is exactly Insert.
func (c *Concurrent) InsertTraced(p geom.Point, sp *trace.Span) error {
	if sp == nil {
		return c.Insert(p)
	}
	op := &pendingOp{kind: opInsert, p: p, done: make(chan struct{}), sp: sp, tok: new(byte), enq: time.Now()}
	c.submit(op)
	return op.err
}

// DeleteTraced is Delete with span recording; a nil sp is exactly Delete.
func (c *Concurrent) DeleteTraced(p geom.Point, sp *trace.Span) (bool, error) {
	if sp == nil {
		return c.Delete(p)
	}
	op := &pendingOp{kind: opDelete, p: p, done: make(chan struct{}), sp: sp, tok: new(byte), enq: time.Now()}
	c.submit(op)
	return op.found, op.err
}

// submit enqueues op and blocks until some leader commits it. The caller
// that wins the leadership lock drains the queue and commits on behalf of
// everyone waiting — classic group commit, no background goroutine.
func (c *Concurrent) submit(op *pendingOp) {
	c.submitAll([]*pendingOp{op})
}

// submitAll enqueues ops (in order, as one contiguous run) and blocks until
// every one of them has been committed or failed. The queue is FIFO and
// leaders drain it from the head, so once the last op is done the earlier
// ones are too.
func (c *Concurrent) submitAll(ops []*pendingOp) {
	if len(ops) == 0 {
		return
	}
	c.qmu.Lock()
	c.queue = append(c.queue, ops...)
	c.qmu.Unlock()

	last := ops[len(ops)-1]
	tok := ops[0].tok // non-nil only for traced runs
	start := time.Now()
	c.wmu.Lock()
	if c.rec != nil {
		c.rec.RecordLockWait(time.Since(start))
	}
	for !done(last) {
		batch := c.take(tok)
		if len(batch) == 0 {
			break // ops were committed by a previous leader
		}
		c.runBatch(batch)
	}
	c.wmu.Unlock()
	for _, op := range ops {
		<-op.done
	}
}

// BatchOp is one operation of a client-assembled write batch (see
// ApplyBatch). Delete is false for an insert of P, true for a delete.
type BatchOp struct {
	Delete bool
	P      geom.Point
}

// BatchResult is the per-operation outcome of an ApplyBatch entry: Found
// mirrors Delete's return value, Err the operation's error (benign
// per-operation outcomes such as ErrDuplicate stay per-entry; a failed
// group commit fails every entry of its group).
type BatchResult struct {
	Found bool
	Err   error
}

// ApplyBatch submits ops as one contiguous run of the group-commit queue
// and blocks until all of them are committed (or failed). Compared with
// calling Insert/Delete once per operation from the same goroutine, the
// whole run is eligible for coalescing into as few as
// ⌈len(ops)/MaxBatch⌉ group commits — the entry point network servers use
// to turn one client BATCH request into few WAL records. Results are
// positional.
func (c *Concurrent) ApplyBatch(ops []BatchOp) []BatchResult {
	return c.ApplyBatchTraced(ops, nil)
}

// ApplyBatchTraced is ApplyBatch recording into one span for the whole
// run: per-operation execute time and page I/O accumulate, the batch-
// level WAL/sync/commit phases are added once per group commit the run
// lands in, and the queue/leadership phase is measured on the run's
// first operation. When the run spans several group commits the phase
// sum approximates (slightly undercounts) the run's wall time — exact
// attribution holds for single-operation requests. A nil sp is exactly
// ApplyBatch.
func (c *Concurrent) ApplyBatchTraced(ops []BatchOp, sp *trace.Span) []BatchResult {
	if len(ops) == 0 {
		return nil
	}
	pend := make([]*pendingOp, len(ops))
	for i, op := range ops {
		kind := opInsert
		if op.Delete {
			kind = opDelete
		}
		pend[i] = &pendingOp{kind: kind, p: op.P, done: make(chan struct{}), sp: sp}
	}
	if sp != nil {
		pend[0].tok = new(byte)
		pend[0].enq = time.Now()
	}
	c.submitAll(pend)
	res := make([]BatchResult, len(ops))
	for i, op := range pend {
		res[i] = BatchResult{Found: op.found, Err: op.err}
	}
	return res
}

func done(op *pendingOp) bool {
	select {
	case <-op.done:
		return true
	default:
		return false
	}
}

// take removes up to MaxBatch operations from the head of the queue.
// tok identifies the calling leader's own submitAll run: a traced
// operation leaving the queue records its wait as the leadership phase
// when this leader enqueued it itself (it waited to BECOME the leader)
// and as the queue phase when another submitter did (it waited FOR a
// leader). The two intervals are the same enqueue→drain span viewed
// from different sides, so recording exactly one of them keeps a span's
// phases disjoint.
func (c *Concurrent) take(tok *byte) []*pendingOp {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	n := len(c.queue)
	if n > c.maxBatch {
		n = c.maxBatch
	}
	batch := make([]*pendingOp, n)
	copy(batch, c.queue[:n])
	c.queue = c.queue[:copy(c.queue, c.queue[n:])]
	for _, op := range batch {
		if op.sp != nil && !op.enq.IsZero() {
			ph := trace.PhaseQueue
			if op.tok != nil && op.tok == tok {
				ph = trace.PhaseLeadership
			}
			op.sp.AddPhase(ph, time.Since(op.enq))
		}
	}
	return batch
}

// benign reports errors that are a legitimate per-operation outcome rather
// than a failure of the batch: they leave the structure unchanged and are
// returned to the one caller that caused them.
func benign(err error) bool {
	return errors.Is(err, ErrDuplicate) || errors.Is(err, ErrCoordRange)
}

// runBatch applies the batch through the writer index and publishes one
// new epoch. Callers hold wmu.
func (c *Concurrent) runBatch(batch []*pendingOp) {
	start := time.Now()
	traced := false
	for _, op := range batch {
		if op.sp != nil {
			traced = true
			break
		}
	}
	var execSum time.Duration
	apply := func(idx Index) error {
		for _, op := range batch {
			var opStart time.Time
			if op.sp != nil {
				opStart = time.Now()
				if c.tracer != nil {
					// Exclusive under wmu: readers run on snapshot views,
					// never through the writer tracer, so the swap cannot
					// misattribute a concurrent reader's I/O.
					c.tracer.SetSink(eio.NewSpanSink(op.sp))
				}
			}
			switch op.kind {
			case opInsert:
				op.err = idx.Insert(op.p)
			case opDelete:
				op.found, op.err = idx.Delete(op.p)
			}
			if op.sp != nil {
				if c.tracer != nil {
					c.tracer.SetSink(nil)
				}
				d := time.Since(opStart)
				execSum += d
				op.sp.AddPhase(trace.PhaseExecute, d)
			}
			if op.err != nil && !benign(op.err) {
				return op.err
			}
		}
		return nil
	}

	var txBefore eio.TxTimings
	if traced && c.durable != nil {
		txBefore = c.durable.Tx().Timings()
	}
	var applyErr error
	if c.durable != nil {
		applyErr = c.durable.Batch(apply)
	} else {
		applyErr = apply(c.writer)
	}

	// recordPhases must run before any op.done closes: the waiter on the
	// other side finishes and emits the span as soon as it unblocks.
	recordPhases := func() {
		if traced {
			c.recordBatchPhases(batch, start, execSum, txBefore)
		}
	}

	if applyErr != nil && c.durable != nil {
		// Durable.Batch rolled the transaction back: the inner store holds
		// the pre-batch image, so the captured versions are redundant and
		// the epoch does not advance. Every operation in the batch fails.
		c.snap.Abort()
		recordPhases()
		c.fail(batch, applyErr)
		return
	}
	// Publish the new epoch. On the non-durable path this happens even
	// after an apply error: the inner store already holds the (possibly
	// partial) new state, and readers must see a published epoch that
	// matches it — the same torn-structure risk a serial caller of a
	// non-durable index accepts.
	if _, err := c.snap.Commit(); err != nil {
		recordPhases()
		c.fail(batch, fmt.Errorf("core: concurrent: publish epoch: %w", err))
		return
	}
	recordPhases()
	if applyErr != nil {
		c.fail(batch, applyErr)
		return
	}
	if c.gate != nil {
		if gerr := c.gate(); gerr != nil {
			// The batch IS committed locally; only the acknowledgement
			// contract failed. Waiters get the stall error and the server
			// layer reports the outcome as unknown.
			c.fail(batch, gerr)
			return
		}
	}
	if c.rec != nil {
		c.rec.RecordBatch(len(batch), time.Since(start))
	}
	for _, op := range batch {
		close(op.done)
	}
}

// recordBatchPhases distributes the batch-level commit cost over the
// traced members of a just-committed (or failed) group. WAL-append and
// sync time come from the TxStore's cumulative timing counters — the
// leader serialized with the commit, so the delta is exactly this
// batch's. The commit phase is the remainder of the batch wall time not
// already attributed to execute/WAL/sync: the in-place apply, anchor
// write, deferred frees and epoch publish. All three are properties of
// the whole group (one WAL record, one fsync schedule), so each traced
// span in the group carries the full value once — the span answers
// "what did this request wait through", not "what share did it consume".
func (c *Concurrent) recordBatchPhases(batch []*pendingOp, start time.Time, execSum time.Duration, txBefore eio.TxTimings) {
	batchDur := time.Since(start)
	var wal, fsync time.Duration
	if c.durable != nil {
		delta := c.durable.Tx().Timings().Sub(txBefore)
		wal, fsync = delta.WALAppend, delta.Sync
	}
	commit := batchDur - execSum - wal - fsync
	if commit < 0 {
		commit = 0
	}
	var prev *trace.Span // ops of one traced run share a span; add once
	for _, op := range batch {
		if op.sp == nil || op.sp == prev {
			continue
		}
		prev = op.sp
		op.sp.AddPhase(trace.PhaseWALAppend, wal)
		op.sp.AddPhase(trace.PhaseSync, fsync)
		op.sp.AddPhase(trace.PhaseCommit, commit)
	}
}

// fail marks every not-yet-benignly-resolved operation in the batch with
// err and releases the waiters.
func (c *Concurrent) fail(batch []*pendingOp, err error) {
	for _, op := range batch {
		if op.err == nil || benign(op.err) {
			op.err = err
			op.found = false
		}
		close(op.done)
	}
}

// --- read path: epoch snapshots ----------------------------------------

// Snapshot pins the current epoch and returns a consistent read-only view
// of the index at that instant. The snapshot stays valid — and keeps its
// version memory alive — until Close, so hold it only as long as needed.
func (c *Concurrent) Snapshot() (*Snapshot, error) {
	v, err := c.acquire()
	if err != nil {
		return nil, err
	}
	return &Snapshot{c: c, v: v}, nil
}

// acquire returns the view for the current epoch, creating it on first use
// after a commit. Opening reads the structure header once per epoch; every
// query at that epoch shares the instance.
func (c *Concurrent) acquire() (*epochView, error) {
	c.vmu.Lock()
	defer c.vmu.Unlock()
	if c.cur != nil && c.cur.epoch == c.snap.Epoch() {
		c.cur.refs++
		return c.cur, nil
	}
	epoch := c.snap.Pin()
	if c.cur != nil && c.cur.epoch == epoch {
		// A commit between the Epoch check and Pin landed us back on the
		// view's epoch; keep the existing instance and the new pin is
		// redundant.
		c.snap.Unpin(epoch)
		c.cur.refs++
		return c.cur, nil
	}
	idx, err := c.open(c.snap.View(epoch))
	if err != nil {
		c.snap.Unpin(epoch)
		return nil, fmt.Errorf("core: concurrent: open snapshot at epoch %d: %w", epoch, err)
	}
	v := &epochView{epoch: epoch, idx: idx, refs: 1}
	old := c.cur
	c.cur = v
	if old != nil && old.refs == 0 {
		c.snap.Unpin(old.epoch)
	}
	return v, nil
}

// release drops one reference; the epoch unpins once the view is neither
// current nor in use.
func (c *Concurrent) release(v *epochView) {
	c.vmu.Lock()
	v.refs--
	if v.refs == 0 && v != c.cur {
		c.snap.Unpin(v.epoch)
	}
	c.vmu.Unlock()
}

// Query implements Index: one query against the current epoch's snapshot.
// It costs the same store I/Os as the identical query on the underlying
// index run serially.
func (c *Concurrent) Query(dst []geom.Point, q geom.Rect) ([]geom.Point, error) {
	v, err := c.acquire()
	if err != nil {
		return dst, err
	}
	defer c.release(v)
	return v.idx.Query(dst, q)
}

// QueryTraced is Query with the query's execute time and exact page
// reads recorded into sp. A traced query opens a PRIVATE view over its
// pinned epoch — a per-query TraceStore whose sink is attached only
// after the structure header loads, so the span counts exactly the
// reads the query itself performs (the same accounting boundary as
// obs.Instrumented) — at the cost of re-reading the header instead of
// sharing the cached epoch view. A nil sp is exactly Query.
func (c *Concurrent) QueryTraced(dst []geom.Point, q geom.Rect, sp *trace.Span) ([]geom.Point, error) {
	if sp == nil {
		return c.Query(dst, q)
	}
	start := time.Now()
	defer func() { sp.AddPhase(trace.PhaseExecute, time.Since(start)) }()
	epoch := c.snap.Pin()
	defer c.snap.Unpin(epoch)
	ts := eio.NewTraceStore(c.snap.View(epoch))
	idx, err := c.open(ts)
	if err != nil {
		return dst, fmt.Errorf("core: concurrent: open traced view at epoch %d: %w", epoch, err)
	}
	ts.SetSink(eio.NewSpanSink(sp))
	defer ts.SetSink(nil)
	return idx.Query(dst, q)
}

// Len implements Index against the current snapshot.
func (c *Concurrent) Len() (int, error) {
	v, err := c.acquire()
	if err != nil {
		return 0, err
	}
	defer c.release(v)
	return v.idx.Len()
}

// Destroy implements Index. It serializes with writers; readers holding
// snapshots keep reading their epoch until they close (the page frees are
// deferred behind their pins).
func (c *Concurrent) Destroy() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	err := c.writer.Destroy()
	if err != nil && c.durable != nil {
		c.snap.Abort()
		return err
	}
	if _, cerr := c.snap.Commit(); cerr != nil && err == nil {
		err = cerr
	}
	c.vmu.Lock()
	if c.cur != nil && c.cur.refs == 0 {
		c.snap.Unpin(c.cur.epoch)
	}
	c.cur = nil
	c.vmu.Unlock()
	return err
}

// Close releases the reader-side machinery: the cached epoch view's pin is
// dropped so the SnapStore can garbage-collect version memory and apply
// deferred frees at its next Commit or Close. Call it after the last query
// and before scrubbing or closing the store — a Concurrent that is never
// Closed keeps its current epoch pinned forever, which makes deferred
// frees look like leaks to eio.FindLeaks. Queries after Close simply
// re-open a view; Close is idempotent.
func (c *Concurrent) Close() {
	c.vmu.Lock()
	if c.cur != nil && c.cur.refs == 0 {
		c.snap.Unpin(c.cur.epoch)
	}
	c.cur = nil
	c.vmu.Unlock()
}

// Snapshot is a pinned, epoch-stamped, read-only view of a Concurrent
// index. It is safe for concurrent use by multiple goroutines and stays
// consistent regardless of concurrent commits. Close releases the pin;
// using a closed snapshot panics.
type Snapshot struct {
	c *Concurrent
	v *epochView

	mu     sync.Mutex
	closed bool
}

// Epoch returns the committed epoch the snapshot is fixed at. Epochs are
// assigned in commit order, so for any two snapshots the one with the
// larger epoch observes a superset of the committed batches.
func (s *Snapshot) Epoch() uint64 { return s.v.epoch }

// Query reports the points inside q as of the snapshot's epoch.
func (s *Snapshot) Query(dst []geom.Point, q geom.Rect) ([]geom.Point, error) {
	return s.v.idx.Query(dst, q)
}

// Len returns the number of stored points as of the snapshot's epoch.
func (s *Snapshot) Len() (int, error) { return s.v.idx.Len() }

// Close releases the snapshot's epoch pin. Close is idempotent.
func (s *Snapshot) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.c.release(s.v)
}
