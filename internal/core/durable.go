package core

import (
	"fmt"

	"rangesearch/internal/eio"
	"rangesearch/internal/geom"
)

// Durable wraps an Index whose store is an eio.TxStore, running every
// update as one atomic transaction: a crash mid-update recovers (via
// eio.OpenTxStore) to exactly the pre-update or post-update state, never a
// torn structure. Queries bypass the transaction machinery entirely.
//
// The wrapped index must have been created or opened ON the TxStore — the
// decorator only scopes transactions, it cannot retrofit buffering onto
// writes that go elsewhere. With a TxStore constructed Disabled the
// decorator is free: Update degenerates to a plain call.
type Durable struct {
	idx Index
	tx  *eio.TxStore
}

var _ Index = (*Durable)(nil)

// NewDurable wraps idx, whose storage lives on tx.
func NewDurable(idx Index, tx *eio.TxStore) *Durable {
	return &Durable{idx: idx, tx: tx}
}

// Insert implements Index as one transaction.
func (d *Durable) Insert(p geom.Point) error {
	return d.tx.Update(func() error { return d.idx.Insert(p) })
}

// Delete implements Index as one transaction.
func (d *Durable) Delete(p geom.Point) (found bool, err error) {
	err = d.tx.Update(func() error {
		var e error
		found, e = d.idx.Delete(p)
		return e
	})
	if err != nil {
		return false, err
	}
	return found, nil
}

// Query implements Index, outside any transaction.
func (d *Durable) Query(dst []geom.Point, q geom.Rect) ([]geom.Point, error) {
	return d.idx.Query(dst, q)
}

// Len implements Index.
func (d *Durable) Len() (int, error) { return d.idx.Len() }

// Destroy implements Index as one transaction: either the whole structure
// is released or none of it is.
func (d *Durable) Destroy() error {
	return d.tx.Update(d.idx.Destroy)
}

// Batch runs fn against the undecorated index inside a single transaction —
// group commit: one WAL record, one fsync schedule, however many updates fn
// performs. If fn returns an error the whole batch rolls back and the error
// is returned. The batch must fit the WAL (eio.ErrTxOverflow otherwise);
// split oversized loads into several batches.
func (d *Durable) Batch(fn func(Index) error) error {
	return d.tx.Update(func() error { return fn(d.idx) })
}

// Tx returns the TxStore the decorator scopes transactions on. Group-
// commit leaders use it to snapshot commit-phase timings (eio.TxTimings)
// around one Batch and attribute WAL-append and fsync time to request
// spans.
func (d *Durable) Tx() *eio.TxStore { return d.tx }

// Sync exposes the store durability barrier for callers that interleave
// non-transactional writes (e.g. bulk builds) with decorated updates.
func (d *Durable) Sync() error {
	if err := d.tx.Sync(); err != nil {
		return fmt.Errorf("core: durable sync: %w", err)
	}
	return nil
}
