package core

import (
	"sync"

	"rangesearch/internal/geom"
)

// Synced wraps an Index with a reader-writer lock, making it safe for
// concurrent use by multiple goroutines. Queries run under the read lock
// and may proceed in parallel; updates serialize under the write lock.
//
// The underlying structures are single-writer by design (their update
// algorithms mutate multi-page node records non-atomically), so this
// wrapper is the supported way to share an index. The eio stores are
// themselves thread-safe, so read-only parallelism is sound.
type Synced struct {
	mu  sync.RWMutex
	idx Index
}

var _ Index = (*Synced)(nil)

// NewSynced wraps idx.
func NewSynced(idx Index) *Synced { return &Synced{idx: idx} }

// Insert implements Index.
func (s *Synced) Insert(p geom.Point) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.idx.Insert(p)
}

// Delete implements Index.
func (s *Synced) Delete(p geom.Point) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.idx.Delete(p)
}

// Query implements Index; concurrent queries proceed in parallel.
func (s *Synced) Query(dst []geom.Point, q geom.Rect) ([]geom.Point, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.idx.Query(dst, q)
}

// Len implements Index.
func (s *Synced) Len() (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.idx.Len()
}

// Destroy implements Index.
func (s *Synced) Destroy() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.idx.Destroy()
}
