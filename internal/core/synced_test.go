package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"rangesearch/internal/eio"
	"rangesearch/internal/epst"
	"rangesearch/internal/geom"
)

func errorsIsDuplicate(err error) bool { return errors.Is(err, ErrDuplicate) }

// TestSyncedConcurrent hammers a shared index from multiple goroutines.
// Run with -race to verify the locking discipline.
func TestSyncedConcurrent(t *testing.T) {
	store := eio.NewMemStore(256)
	inner, err := NewThreeSided(store, epst.Options{})
	if err != nil {
		t.Fatal(err)
	}
	idx := NewSynced(inner)

	const (
		writers = 3
		readers = 4
		ops     = 300
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < ops; i++ {
				p := geom.Point{X: seed*100000 + rng.Int63n(10000), Y: rng.Int63n(10000)}
				if rng.Intn(4) == 0 {
					if _, err := idx.Delete(p); err != nil {
						errs <- err
						return
					}
				} else if err := idx.Insert(p); err != nil {
					// Writers use disjoint x-bands, so only genuine
					// duplicates from a writer's own reinserts occur.
					if !errorsIsDuplicate(err) {
						errs <- err
						return
					}
				}
			}
		}(int64(w + 1))
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < ops; i++ {
				a := rng.Int63n(400000)
				q := geom.Rect{XLo: a, XHi: a + 50000, YLo: rng.Int63n(10000), YHi: geom.MaxCoord}
				if _, err := idx.Query(nil, q); err != nil {
					errs <- err
					return
				}
				if _, err := idx.Len(); err != nil {
					errs <- err
					return
				}
			}
		}(int64(100 + r))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// The structure must still be valid after the storm.
	if err := inner.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
