package core

import (
	"errors"
	"math/rand"
	"testing"

	"rangesearch/internal/eio"
	"rangesearch/internal/epst"
	"rangesearch/internal/geom"
	"rangesearch/internal/range4"
)

func distinctPoints(rng *rand.Rand, n int, coordRange int64) []geom.Point {
	seen := make(map[geom.Point]bool)
	var pts []geom.Point
	for len(pts) < n {
		p := geom.Point{X: rng.Int63n(coordRange), Y: rng.Int63n(coordRange)}
		if !seen[p] {
			seen[p] = true
			pts = append(pts, p)
		}
	}
	return pts
}

func sorted(pts []geom.Point) []geom.Point {
	out := append([]geom.Point(nil), pts...)
	geom.SortByX(out)
	return out
}

func equalPts(a, b []geom.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// contract runs the Index behaviour test shared by both facades.
func contract(t *testing.T, name string, mk func(store eio.Store) (Index, error)) {
	t.Run(name, func(t *testing.T) {
		rng := rand.New(rand.NewSource(5))
		store := eio.NewMemStore(128)
		idx, err := mk(store)
		if err != nil {
			t.Fatal(err)
		}
		model := map[geom.Point]bool{}
		universe := distinctPoints(rng, 250, 600)
		for op := 0; op < 1200; op++ {
			p := universe[rng.Intn(len(universe))]
			if rng.Intn(3) != 0 {
				err := idx.Insert(p)
				if model[p] {
					if !errors.Is(err, ErrDuplicate) {
						t.Fatalf("op %d: duplicate insert: %v", op, err)
					}
				} else if err != nil {
					t.Fatalf("op %d: insert: %v", op, err)
				}
				model[p] = true
			} else {
				found, err := idx.Delete(p)
				if err != nil {
					t.Fatalf("op %d: delete: %v", op, err)
				}
				if found != model[p] {
					t.Fatalf("op %d: delete mismatch", op)
				}
				delete(model, p)
			}
			if op%173 == 0 {
				a := rng.Int63n(600)
				b := a + rng.Int63n(600-a+1)
				c := rng.Int63n(600)
				d := c + rng.Int63n(600-c+1)
				q := geom.Rect{XLo: a, XHi: b, YLo: c, YHi: d}
				got, err := idx.Query(nil, q)
				if err != nil {
					t.Fatal(err)
				}
				var want []geom.Point
				for p := range model {
					if q.Contains(p) {
						want = append(want, p)
					}
				}
				if !equalPts(sorted(got), sorted(want)) {
					t.Fatalf("op %d: query %v mismatch", op, q)
				}
			}
		}
		// Sentinel coordinates rejected.
		if err := idx.Insert(geom.Point{X: geom.MaxCoord, Y: 0}); err == nil {
			t.Fatal("sentinel coordinate accepted")
		}
		if err := idx.Destroy(); err != nil {
			t.Fatal(err)
		}
		if got := store.Pages(); got != 0 {
			t.Fatalf("%d pages leaked", got)
		}
	})
}

func TestIndexContract(t *testing.T) {
	contract(t, "three-sided", func(s eio.Store) (Index, error) {
		return NewThreeSided(s, epst.Options{A: 2, K: 4})
	})
	contract(t, "four-sided", func(s eio.Store) (Index, error) {
		return NewFourSided(s, range4.Options{Rho: 3, K: 4})
	})
}

func TestBuildAndReopen(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := distinctPoints(rng, 300, 1000)

	store := eio.NewMemStore(128)
	s3, err := BuildThreeSided(store, epst.Options{A: 2, K: 4}, pts)
	if err != nil {
		t.Fatal(err)
	}
	s3b, err := OpenThreeSided(store, s3.HeaderID())
	if err != nil {
		t.Fatal(err)
	}
	n, err := s3b.Len()
	if err != nil || n != len(pts) {
		t.Fatalf("three-sided reopen Len=%d, %v", n, err)
	}
	if err := s3b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	store4 := eio.NewMemStore(128)
	s4, err := BuildFourSided(store4, range4.Options{Rho: 3, K: 4}, pts)
	if err != nil {
		t.Fatal(err)
	}
	s4b, err := OpenFourSided(store4, s4.HeaderID())
	if err != nil {
		t.Fatal(err)
	}
	n, err = s4b.Len()
	if err != nil || n != len(pts) {
		t.Fatalf("four-sided reopen Len=%d, %v", n, err)
	}
	if err := s4b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestThreeSidedNativeQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	store := eio.NewMemStore(128)
	pts := distinctPoints(rng, 200, 400)
	s, err := BuildThreeSided(store, epst.Options{A: 2, K: 4}, pts)
	if err != nil {
		t.Fatal(err)
	}
	q3 := geom.Query3{XLo: 50, XHi: 350, YLo: 200}
	native, err := s.Query3(nil, q3)
	if err != nil {
		t.Fatal(err)
	}
	viaRect, err := s.Query(nil, geom.Rect{XLo: 50, XHi: 350, YLo: 200, YHi: geom.MaxCoord})
	if err != nil {
		t.Fatal(err)
	}
	if !equalPts(sorted(native), sorted(viaRect)) {
		t.Fatal("native and rect query disagree")
	}
	// MaxY.
	top, ok, err := s.MaxY()
	if err != nil || !ok {
		t.Fatal(err)
	}
	for _, p := range pts {
		if top.YLess(p) {
			t.Fatalf("MaxY %v below %v", top, p)
		}
	}
	// Bounded-top filtering stays correct.
	rect := geom.Rect{XLo: 0, XHi: 400, YLo: 100, YHi: 300}
	got, err := s.Query(nil, rect)
	if err != nil {
		t.Fatal(err)
	}
	var want []geom.Point
	for _, p := range pts {
		if rect.Contains(p) {
			want = append(want, p)
		}
	}
	if !equalPts(sorted(got), sorted(want)) {
		t.Fatal("bounded-top query mismatch")
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	store := eio.NewMemStore(128)
	if _, err := BuildThreeSided(store, epst.Options{}, []geom.Point{{X: 1, Y: 1}, {X: 1, Y: 1}}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate: %v", err)
	}
	if _, err := BuildThreeSided(store, epst.Options{}, []geom.Point{{X: geom.MinCoord, Y: 1}}); !errors.Is(err, ErrCoordRange) {
		t.Fatalf("sentinel: %v", err)
	}
	if _, err := BuildFourSided(store, range4.Options{}, []geom.Point{{X: 2, Y: 2}, {X: 2, Y: 2}}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate 4-sided: %v", err)
	}
}
