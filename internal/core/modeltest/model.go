// Package modeltest is a model-based differential test harness for the
// core.Index implementations: randomized, seeded operation sequences are
// replayed simultaneously against an index under test and against a naive
// O(N) in-memory model, and every query result, delete outcome, duplicate
// verdict and length is compared. A divergence is shrunk to a minimal
// failing sequence (delta debugging) and written out as a replayable JSON
// artifact, so a one-in-a-million interleaving becomes a deterministic
// regression test.
//
// The harness is structure-agnostic (anything implementing core.Index) and
// is run in CI over the full wrapper matrix: the paper's two structures
// (epst-backed ThreeSided and range4-backed FourSided), each plain, behind
// Synced, behind Durable (WAL transactions), behind Concurrent (group
// commit + snapshot reads), and behind Concurrent-over-Durable.
package modeltest

import (
	"sort"

	"rangesearch/internal/geom"
)

// Model is the ground truth: a plain set of points with O(N) queries. It
// is deliberately too simple to be wrong.
type Model struct {
	pts map[geom.Point]struct{}
}

// NewModel returns an empty model.
func NewModel() *Model {
	return &Model{pts: make(map[geom.Point]struct{})}
}

// Has reports membership.
func (m *Model) Has(p geom.Point) bool {
	_, ok := m.pts[p]
	return ok
}

// Insert adds p, reporting false if it was already present.
func (m *Model) Insert(p geom.Point) bool {
	if _, ok := m.pts[p]; ok {
		return false
	}
	m.pts[p] = struct{}{}
	return true
}

// Delete removes p, reporting whether it was present.
func (m *Model) Delete(p geom.Point) bool {
	if _, ok := m.pts[p]; !ok {
		return false
	}
	delete(m.pts, p)
	return true
}

// Len returns the number of stored points.
func (m *Model) Len() int { return len(m.pts) }

// Query reports the points inside q, sorted by (X, Y).
func (m *Model) Query(q geom.Rect) []geom.Point {
	var out []geom.Point
	for p := range m.pts {
		if q.Contains(p) {
			out = append(out, p)
		}
	}
	SortPoints(out)
	return out
}

// SortPoints orders pts by (X, Y) — the canonical order the harness uses
// to compare result sets.
func SortPoints(pts []geom.Point) {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].X != pts[j].X {
			return pts[i].X < pts[j].X
		}
		return pts[i].Y < pts[j].Y
	})
}
