package modeltest

import (
	"errors"
	"fmt"
	"testing"

	"rangesearch/internal/core"
	"rangesearch/internal/eio"
	"rangesearch/internal/epst"
	"rangesearch/internal/geom"
	"rangesearch/internal/range4"
	"rangesearch/internal/wbuf"
)

const coordRange = 1 << 20

// epstFactory builds a plain ThreeSided on a fresh MemStore.
func epstFactory() (core.Index, func(), error) {
	mem := eio.NewMemStore(512)
	idx, err := core.NewThreeSided(mem, epst.Options{})
	if err != nil {
		return nil, nil, err
	}
	return idx, func() { mem.Close() }, nil
}

// range4Factory builds a plain FourSided on a fresh MemStore.
func range4Factory() (core.Index, func(), error) {
	mem := eio.NewMemStore(512)
	idx, err := core.NewFourSided(mem, range4.Options{})
	if err != nil {
		return nil, nil, err
	}
	return idx, func() { mem.Close() }, nil
}

// walPages sizes the TxStore WAL for the largest single-operation
// transaction in the matrix: a range4 insert can trigger a global
// substructure rebuild whose page footprint grows with N, far past what a
// B-tree-like update would need (the harness itself found 256 overflowing
// at ~1.7k live points).
const walPages = 8192

// durably wraps a factory's structure in Durable over a TxStore, so every
// model-checked operation is one WAL transaction.
func durably(mk func(eio.Store) (core.Index, error)) Factory {
	return func() (core.Index, func(), error) {
		mem := eio.NewMemStore(512)
		tx, err := eio.NewTxStore(mem, eio.TxOptions{WALPages: walPages})
		if err != nil {
			return nil, nil, err
		}
		idx, err := mk(tx)
		if err != nil {
			return nil, nil, err
		}
		return core.NewDurable(idx, tx), func() { tx.Close() }, nil
	}
}

// concurrently stacks Concurrent (group commit + snapshot reads) on a
// structure living on a SnapStore; durable additionally routes batches
// through Durable.Batch over a TxStore.
func concurrently(
	create func(eio.Store) (core.Index, eio.PageID, error),
	open func(eio.Store, eio.PageID) (core.Index, error),
	durable bool,
) Factory {
	return func() (core.Index, func(), error) {
		var base eio.Store = eio.NewMemStore(512)
		var tx *eio.TxStore
		if durable {
			var err error
			tx, err = eio.NewTxStore(base, eio.TxOptions{WALPages: walPages})
			if err != nil {
				return nil, nil, err
			}
			base = tx
		}
		snap := eio.NewSnapStore(base, 0)
		idx, hdr, err := create(snap)
		if err != nil {
			return nil, nil, err
		}
		if _, err := snap.Commit(); err != nil {
			return nil, nil, err
		}
		writer := idx
		if durable {
			writer = core.NewDurable(idx, tx)
		}
		c, err := core.NewConcurrent(writer, snap, func(s eio.Store) (core.Index, error) { return open(s, hdr) }, core.ConcurrentOptions{})
		if err != nil {
			return nil, nil, err
		}
		return c, func() { snap.Close() }, nil
	}
}

func createThreeSided(s eio.Store) (core.Index, eio.PageID, error) {
	idx, err := core.NewThreeSided(s, epst.Options{})
	if err != nil {
		return nil, eio.NilPage, err
	}
	return idx, idx.HeaderID(), nil
}

func openThreeSided(s eio.Store, hdr eio.PageID) (core.Index, error) {
	return core.OpenThreeSided(s, hdr)
}

func createFourSided(s eio.Store) (core.Index, eio.PageID, error) {
	idx, err := core.NewFourSided(s, range4.Options{})
	if err != nil {
		return nil, eio.NilPage, err
	}
	return idx, idx.HeaderID(), nil
}

func openFourSided(s eio.Store, hdr eio.PageID) (core.Index, error) {
	return core.OpenFourSided(s, hdr)
}

// bufferedly decorates a factory with the write buffer, using a small
// flush threshold so a 10k-op replay exercises dozens of flush/merge
// cycles, not just the staging path. No journal: crash recovery has its
// own sweep in internal/wbuf; here the differential target is the
// buffer/merge/flush semantics.
func bufferedly(mk Factory) Factory {
	return func() (core.Index, func(), error) {
		idx, closeFn, err := mk()
		if err != nil {
			return nil, nil, err
		}
		b, err := wbuf.NewBuffered(idx, wbuf.Options{MaxOps: 64})
		if err != nil {
			closeFn()
			return nil, nil, err
		}
		return b, func() { b.Close(); closeFn() }, nil
	}
}

// configs is the full differential matrix: both paper structures crossed
// with every wrapper in the serving stack.
func configs() []Config {
	syncedly := func(mk Factory) Factory {
		return func() (core.Index, func(), error) {
			idx, closeFn, err := mk()
			if err != nil {
				return nil, nil, err
			}
			return core.NewSynced(idx), closeFn, nil
		}
	}
	epstDurable := durably(func(s eio.Store) (core.Index, error) { return core.NewThreeSided(s, epst.Options{}) })
	return []Config{
		{Name: "epst-plain", New: epstFactory},
		{Name: "epst-synced", New: syncedly(epstFactory)},
		{Name: "epst-durable", New: epstDurable},
		{Name: "epst-concurrent", New: concurrently(createThreeSided, openThreeSided, false)},
		{Name: "epst-concurrent-durable", New: concurrently(createThreeSided, openThreeSided, true)},
		{Name: "epst-buffered", New: bufferedly(epstFactory)},
		{Name: "epst-buffered-durable", New: bufferedly(epstDurable)},
		{Name: "epst-buffered-concurrent", New: bufferedly(concurrently(createThreeSided, openThreeSided, true))},
		{Name: "range4-plain", New: range4Factory},
		{Name: "range4-synced", New: syncedly(range4Factory)},
		{Name: "range4-durable", New: durably(func(s eio.Store) (core.Index, error) { return core.NewFourSided(s, range4.Options{}) })},
		{Name: "range4-concurrent", New: concurrently(createFourSided, openFourSided, false)},
		{Name: "range4-concurrent-durable", New: concurrently(createFourSided, openFourSided, true)},
		{Name: "range4-buffered", New: bufferedly(range4Factory)},
	}
}

// seeds is the fixed CI seed matrix. Adding a seed here reruns history;
// a failure writes a shrunk artifact (see MODELTEST_ARTIFACTS).
var seeds = []int64{1, 7}

// TestDifferential replays the generated sequences over the full matrix:
// ≥10k ops per config in a full run, trimmed under -short (the -race CI
// job runs short; the plain job runs full).
func TestDifferential(t *testing.T) {
	nops := 10000
	runSeeds := seeds
	if testing.Short() {
		nops = 1500
		runSeeds = seeds[:1]
	}
	for _, cfg := range configs() {
		for _, seed := range runSeeds {
			t.Run(fmt.Sprintf("%s/seed%d", cfg.Name, seed), func(t *testing.T) {
				ops := Generate(seed, nops, coordRange)
				err := Replay(cfg.New, ops)
				if err == nil {
					return
				}
				var d *Divergence
				if !errors.As(err, &d) {
					t.Fatalf("seed %d: infrastructure failure: %v", seed, err)
				}
				small := Shrink(cfg.New, ops[:d.Step+1])
				path, aerr := WriteArtifact(cfg.Name, seed, d.Detail, small)
				if aerr != nil {
					t.Logf("could not write artifact: %v", aerr)
				} else if path != "" {
					t.Logf("shrunk repro written to %s", path)
				}
				t.Fatalf("seed %d: %v (shrunk to %d ops)", seed, d, len(small))
			})
		}
	}
}

// TestShrinkMinimizes plants a deterministic bug (an index wrapper that
// silently drops inserts whose X is a multiple of 16) and checks the
// shrinker reduces the sequence to a handful of ops that still reproduce,
// and that the artifact round-trips.
func TestShrinkMinimizes(t *testing.T) {
	mk := func() (core.Index, func(), error) {
		idx, closeFn, err := epstFactory()
		if err != nil {
			return nil, nil, err
		}
		return &dropModInsert{Index: idx}, closeFn, nil
	}
	ops := Generate(3, 4000, coordRange)
	err := Replay(mk, ops)
	var d *Divergence
	if !errors.As(err, &d) {
		t.Fatalf("planted bug not detected: %v", err)
	}
	small := Shrink(mk, ops[:d.Step+1])
	if len(small) > 4 {
		t.Fatalf("shrinker left %d of %d ops", len(small), d.Step+1)
	}
	if err := Replay(mk, small); !errors.As(err, &d) {
		t.Fatalf("shrunk sequence no longer reproduces: %v", err)
	}
	// And the clean index passes the same shrunk sequence.
	if err := Replay(epstFactory, small); err != nil {
		t.Fatalf("shrunk sequence fails on the correct index: %v", err)
	}

	t.Setenv("MODELTEST_ARTIFACTS", t.TempDir())
	path, err := WriteArtifact("planted", 3, d.Detail, small)
	if err != nil || path == "" {
		t.Fatalf("artifact write: (%q, %v)", path, err)
	}
	art, err := ReadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Ops) != len(small) || art.Seed != 3 {
		t.Fatalf("artifact round-trip mismatch: %d ops seed %d", len(art.Ops), art.Seed)
	}
	if err := Replay(mk, art.Ops); !errors.As(err, &d) {
		t.Fatalf("artifact replay no longer reproduces: %v", err)
	}
}

// dropModInsert silently swallows inserts of points whose X coordinate is
// a multiple of 16 — a realistic lost-update bug for the harness to find,
// and state-free so the minimal reproduction is a single operation.
type dropModInsert struct {
	core.Index
}

func (d *dropModInsert) Insert(p geom.Point) error {
	if p.X%16 == 0 {
		return nil // lie: claim success without inserting
	}
	return d.Index.Insert(p)
}

// TestGenerateDeterministic pins that a seed fully determines the
// sequence — the property the CI seed matrix and artifacts rely on.
func TestGenerateDeterministic(t *testing.T) {
	a := Generate(42, 500, coordRange)
	b := Generate(42, 500, coordRange)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	var ins, del, q int
	for _, op := range a {
		switch op.Kind {
		case OpInsert:
			ins++
		case OpDelete:
			del++
		case OpQuery:
			q++
		}
	}
	if ins == 0 || del == 0 || q == 0 {
		t.Fatalf("degenerate mix: %d inserts, %d deletes, %d queries", ins, del, q)
	}
}
