package modeltest

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"rangesearch/internal/core"
	"rangesearch/internal/geom"
)

// OpKind enumerates the operations the harness generates.
type OpKind uint8

const (
	OpInsert OpKind = iota
	OpDelete
	OpQuery
)

func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpQuery:
		return "query"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op is one step of a differential run. Insert/Delete use P; Query uses Q.
// The fields are exported so failing sequences serialize to JSON artifacts
// and replay bit-identically.
type Op struct {
	Kind OpKind     `json:"kind"`
	P    geom.Point `json:"p,omitempty"`
	Q    geom.Rect  `json:"q,omitempty"`
}

// Factory builds a fresh, empty index under test. It is called once per
// replay (the shrinker replays many times), so it must return an
// independent instance each call; close tears the instance down.
type Factory func() (idx core.Index, close func(), err error)

// Config names one cell of the differential matrix.
type Config struct {
	Name string
	New  Factory
}

// Generate produces a deterministic n-operation sequence from seed. The mix
// is ~45% inserts (a few deliberately duplicate), ~20% deletes (biased
// toward points that exist, so the found-path is exercised), ~35% queries
// (bounded windows, 3-sided open-top windows, and occasional full scans).
// Coordinates are drawn from [0, coordRange).
func Generate(seed int64, n int, coordRange int64) []Op {
	rng := rand.New(rand.NewSource(seed))
	present := make(map[geom.Point]struct{})
	var live []geom.Point

	randPoint := func() geom.Point {
		return geom.Point{X: rng.Int63n(coordRange), Y: rng.Int63n(coordRange)}
	}

	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		switch r := rng.Float64(); {
		case r < 0.45: // insert
			p := randPoint()
			if len(live) > 0 && rng.Float64() < 0.05 {
				p = live[rng.Intn(len(live))] // deliberate duplicate
			}
			ops = append(ops, Op{Kind: OpInsert, P: p})
			if _, dup := present[p]; !dup {
				present[p] = struct{}{}
				live = append(live, p)
			}
		case r < 0.65: // delete
			var p geom.Point
			if len(live) > 0 && rng.Float64() < 0.7 {
				j := rng.Intn(len(live))
				p = live[j]
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
				delete(present, p)
			} else {
				p = randPoint() // almost surely absent
				if _, ok := present[p]; ok {
					delete(present, p)
					for j, q := range live {
						if q == p {
							live[j] = live[len(live)-1]
							live = live[:len(live)-1]
							break
						}
					}
				}
			}
			ops = append(ops, Op{Kind: OpDelete, P: p})
		default: // query
			ops = append(ops, Op{Kind: OpQuery, Q: randRect(rng, coordRange)})
		}
	}
	return ops
}

func randRect(rng *rand.Rand, coordRange int64) geom.Rect {
	span := func(width int64) (int64, int64) {
		lo := rng.Int63n(coordRange)
		hi := lo + rng.Int63n(width+1)
		if hi >= coordRange {
			hi = coordRange - 1
		}
		return lo, hi
	}
	switch r := rng.Float64(); {
	case r < 0.60: // bounded window, ~1/8th of the space per side
		xlo, xhi := span(coordRange / 8)
		ylo, yhi := span(coordRange / 8)
		return geom.Rect{XLo: xlo, XHi: xhi, YLo: ylo, YHi: yhi}
	case r < 0.85: // 3-sided: open top
		xlo, xhi := span(coordRange / 4)
		return geom.Rect{XLo: xlo, XHi: xhi, YLo: rng.Int63n(coordRange), YHi: geom.MaxCoord}
	default: // full scan
		return geom.Rect{XLo: 0, XHi: coordRange, YLo: 0, YHi: geom.MaxCoord}
	}
}

// Divergence describes the first disagreement between the index under test
// and the model during a replay.
type Divergence struct {
	Step   int    // index into the op sequence
	Op     Op     // the operation that diverged
	Detail string // human-readable disagreement
}

func (d *Divergence) Error() string {
	return fmt.Sprintf("step %d (%s): %s", d.Step, d.Op.Kind, d.Detail)
}

// Replay runs ops against a fresh index from mk and the model in lockstep.
// It returns a *Divergence if the index disagrees with the model, a plain
// error for infrastructure failures (store errors, factory errors), and
// nil when the full sequence matches. Lengths are compared after every
// mutation batch of lenEvery ops and at the end.
func Replay(mk Factory, ops []Op) error {
	idx, closeFn, err := mk()
	if err != nil {
		return fmt.Errorf("modeltest: factory: %w", err)
	}
	defer closeFn()

	const lenEvery = 128
	model := NewModel()
	for i, op := range ops {
		switch op.Kind {
		case OpInsert:
			wantDup := model.Has(op.P)
			err := idx.Insert(op.P)
			switch {
			case wantDup && !errors.Is(err, core.ErrDuplicate):
				return &Divergence{Step: i, Op: op, Detail: fmt.Sprintf("insert of existing %v: want ErrDuplicate, got %v", op.P, err)}
			case !wantDup && err != nil:
				return &Divergence{Step: i, Op: op, Detail: fmt.Sprintf("insert of new %v: %v", op.P, err)}
			}
			model.Insert(op.P)
		case OpDelete:
			want := model.Has(op.P)
			found, err := idx.Delete(op.P)
			if err != nil {
				return &Divergence{Step: i, Op: op, Detail: fmt.Sprintf("delete %v: %v", op.P, err)}
			}
			if found != want {
				return &Divergence{Step: i, Op: op, Detail: fmt.Sprintf("delete %v: found=%v, model=%v", op.P, found, want)}
			}
			model.Delete(op.P)
		case OpQuery:
			got, err := idx.Query(nil, op.Q)
			if err != nil {
				return &Divergence{Step: i, Op: op, Detail: fmt.Sprintf("query %+v: %v", op.Q, err)}
			}
			SortPoints(got)
			want := model.Query(op.Q)
			if d := diffPoints(got, want); d != "" {
				return &Divergence{Step: i, Op: op, Detail: fmt.Sprintf("query %+v: %s", op.Q, d)}
			}
		}
		if i%lenEvery == lenEvery-1 {
			if err := compareLen(idx, model, i, op); err != nil {
				return err
			}
		}
	}
	return compareLen(idx, model, len(ops)-1, Op{})
}

func compareLen(idx core.Index, model *Model, step int, op Op) error {
	n, err := idx.Len()
	if err != nil {
		return &Divergence{Step: step, Op: op, Detail: fmt.Sprintf("Len: %v", err)}
	}
	if n != model.Len() {
		return &Divergence{Step: step, Op: op, Detail: fmt.Sprintf("Len=%d, model=%d", n, model.Len())}
	}
	return nil
}

func diffPoints(got, want []geom.Point) string {
	if len(got) != len(want) {
		return fmt.Sprintf("%d points, model has %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Sprintf("result[%d]=%v, model has %v", i, got[i], want[i])
		}
	}
	return ""
}

// Shrink reduces ops to a (locally) minimal sequence that still diverges,
// using delta debugging: remove progressively smaller chunks, keeping any
// removal under which Replay still reports a Divergence. Infrastructure
// errors during shrinking are treated as "does not reproduce".
func Shrink(mk Factory, ops []Op) []Op {
	fails := func(o []Op) bool {
		var d *Divergence
		return errors.As(Replay(mk, o), &d)
	}
	if !fails(ops) {
		return ops // not reproducible from a fresh instance; keep everything
	}
	chunk := len(ops) / 2
	if chunk < 1 {
		chunk = 1
	}
	for {
		removed := false
		for start := 0; start+chunk <= len(ops); {
			cand := make([]Op, 0, len(ops)-chunk)
			cand = append(cand, ops[:start]...)
			cand = append(cand, ops[start+chunk:]...)
			if fails(cand) {
				ops = cand
				removed = true
				// Retry the same start: the next chunk slid into place.
			} else {
				start += chunk
			}
		}
		if chunk == 1 {
			if !removed {
				return ops
			}
			continue // keep stripping single ops until a fixed point
		}
		chunk /= 2
	}
}

// Artifact is the JSON shape of a persisted failing sequence.
type Artifact struct {
	Config string `json:"config"`
	Seed   int64  `json:"seed"`
	Detail string `json:"detail"`
	Ops    []Op   `json:"ops"`
}

// WriteArtifact persists a shrunk failing sequence to the directory named
// by the MODELTEST_ARTIFACTS environment variable (CI uploads it on
// failure). It returns the path, or "" when the variable is unset.
func WriteArtifact(config string, seed int64, detail string, ops []Op) (string, error) {
	dir := os.Getenv("MODELTEST_ARTIFACTS")
	if dir == "" {
		return "", nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-seed%d.json", config, seed))
	data, err := json.MarshalIndent(Artifact{Config: config, Seed: seed, Detail: detail, Ops: ops}, "", " ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ReadArtifact loads a sequence previously written by WriteArtifact, for
// turning a CI failure into a local deterministic reproduction.
func ReadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, err
	}
	return &a, nil
}
