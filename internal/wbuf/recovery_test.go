package wbuf

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"rangesearch/internal/core"
	"rangesearch/internal/eio"
	"rangesearch/internal/epst"
	"rangesearch/internal/geom"
)

// buildScript produces a deterministic mixed op sequence over a small
// domain (so deletes hit, duplicates occur, and points get re-inserted).
func buildScript(n int, seed int64) []core.BatchOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]core.BatchOp, n)
	for i := range ops {
		ops[i] = core.BatchOp{
			Delete: rng.Float64() < 0.35,
			P:      geom.Point{X: rng.Int63n(64), Y: rng.Int63n(64)},
		}
	}
	return ops
}

// applyModel plays ops over m with the index's semantics (dup inserts
// and absent deletes are no-ops).
func applyModel(m model, ops []core.BatchOp) {
	for _, op := range ops {
		if op.Delete {
			m.delete(op.P)
		} else {
			m.insert(op.P)
		}
	}
}

// freshBase builds a ThreeSided preloaded with pts on its own MemStore.
func freshBase(t *testing.T, pts []geom.Point) core.Index {
	t.Helper()
	mem := eio.NewMemStore(512)
	t.Cleanup(func() { mem.Close() })
	idx, err := core.NewThreeSided(mem, epst.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if err := idx.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	return idx
}

func verifyAgainstModel(t *testing.T, idx core.Index, m model, label string) {
	t.Helper()
	all := geom.Rect{XLo: 0, XHi: 1 << 20, YLo: 0, YHi: 1 << 20}
	got, err := idx.Query(nil, all)
	if err != nil {
		t.Fatalf("%s: query: %v", label, err)
	}
	geom.SortByX(got)
	want := m.query(all)
	if len(got) != len(want) {
		t.Fatalf("%s: %d points, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: point %d = %v, want %v", label, i, got[i], want[i])
		}
	}
	if n, err := idx.Len(); err != nil || n != len(want) {
		t.Fatalf("%s: len=%d err=%v, want %d", label, n, err, len(want))
	}
}

// TestJournalRecoverySweep crashes the journal at EVERY byte offset: a
// scripted run stages ops (journal synced per op, never flushed), the
// journal file is cut to each possible length, and the reopened stack
// must recover exactly the acknowledged prefix — the ops whose records
// survived whole — with torn tails discarded, never a torn or invented
// state.
func TestJournalRecoverySweep(t *testing.T) {
	nOps := 40
	if testing.Short() {
		nOps = 16
	}
	script := buildScript(nOps, 7)
	basePts := []geom.Point{{X: 1, Y: 1}, {X: 10, Y: 20}, {X: 33, Y: 3}}

	// Record the journal bytes after each acked op by staging the script
	// once. MaxOps is huge so nothing flushes: the journal holds the
	// whole history.
	dir := t.TempDir()
	livePath := filepath.Join(dir, "live.journal")
	live, err := NewBuffered(freshBase(t, basePts), Options{MaxOps: 1 << 20, Journal: livePath})
	if err != nil {
		t.Fatal(err)
	}
	// ackedAfter[i] = ops of the script acknowledged once journal holds
	// i valid bytes. Build by replaying the script and snapshotting the
	// journal length after each op.
	type ack struct {
		bytes int64
		op    int // script ops [0, op) acknowledged
	}
	var acks []ack
	for i, op := range script {
		var err error
		if op.Delete {
			_, err = live.Delete(op.P)
		} else {
			err = live.Insert(op.P)
		}
		if !benign(err) {
			t.Fatalf("op %d: %v", i, err)
		}
		fi, err := os.Stat(livePath)
		if err != nil {
			t.Fatal(err)
		}
		acks = append(acks, ack{bytes: fi.Size(), op: i + 1})
	}
	total := acks[len(acks)-1].bytes

	for cut := int64(0); cut <= total; cut++ {
		// Acked prefix at this cut: the last op whose journal bytes fit
		// wholly under the cut. (Ops that staged nothing — absent
		// deletes, dup inserts — add no bytes and ride along.)
		opCount := 0
		for _, a := range acks {
			if a.bytes <= cut {
				opCount = a.op
			}
		}
		raw, err := os.ReadFile(livePath)
		if err != nil {
			t.Fatal(err)
		}
		crashPath := filepath.Join(dir, "crash.journal")
		if err := os.WriteFile(crashPath, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}

		m := model{}
		for _, p := range basePts {
			m.insert(p)
		}
		applyModel(m, script[:opCount])

		reopened, err := NewBuffered(freshBase(t, basePts), Options{MaxOps: 1 << 20, Journal: crashPath})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		verifyAgainstModel(t, reopened, m, "cut")
		if err := reopened.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
	}
	live.Close()
}

// TestPartialFlushReplayIdempotent simulates a crash at every point
// inside a flush: the base has absorbed the first k collapsed
// operations but the journal was not yet truncated. A reopen replays
// the FULL journal over the partially-flushed base and must converge to
// exactly the acknowledged state — replay is idempotent because staging
// probes the base fresh.
func TestPartialFlushReplayIdempotent(t *testing.T) {
	script := buildScript(60, 11)
	basePts := []geom.Point{{X: 2, Y: 2}, {X: 40, Y: 9}, {X: 17, Y: 55}, {X: 63, Y: 0}}

	// Stage the whole script once to capture the journal and compute the
	// collapsed flush ops (what flushLocked would apply).
	dir := t.TempDir()
	jpath := filepath.Join(dir, "full.journal")
	staged, err := NewBuffered(freshBase(t, basePts), Options{MaxOps: 1 << 20, Journal: jpath})
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range script {
		var err error
		if op.Delete {
			_, err = staged.Delete(op.P)
		} else {
			err = staged.Insert(op.P)
		}
		if !benign(err) {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	flushOps := staged.collapsedOps()
	journalRaw, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}

	m := model{}
	for _, p := range basePts {
		m.insert(p)
	}
	applyModel(m, script)

	for k := 0; k <= len(flushOps); k++ {
		// Base state at crash: initial points + first k flush ops.
		base := freshBase(t, basePts)
		if err := applyOps(base, flushOps[:k]); err != nil {
			t.Fatalf("k=%d: partial flush: %v", k, err)
		}
		crashPath := filepath.Join(dir, "crash.journal")
		if err := os.WriteFile(crashPath, journalRaw, 0o644); err != nil {
			t.Fatal(err)
		}
		reopened, err := NewBuffered(base, Options{MaxOps: 1 << 20, Journal: crashPath})
		if err != nil {
			t.Fatalf("k=%d: reopen: %v", k, err)
		}
		verifyAgainstModel(t, reopened, m, "partial flush")
		// Replay must also have flushed and truncated: a second reopen
		// finds an empty journal and the same state.
		if err := reopened.Close(); err != nil {
			t.Fatalf("k=%d: close: %v", k, err)
		}
		again, err := NewBuffered(base, Options{MaxOps: 1 << 20, Journal: crashPath})
		if err != nil {
			t.Fatalf("k=%d: second reopen: %v", k, err)
		}
		if again.Depth() != 0 {
			t.Fatalf("k=%d: second reopen depth %d", k, again.Depth())
		}
		verifyAgainstModel(t, again, m, "second reopen")
		again.Close()
	}
	staged.Close()
}

// collapsedOps exposes the flush collapse for the sweep (test-only).
func (b *Buffered) collapsedOps() []core.BatchOp {
	b.mu.RLock()
	defer b.mu.RUnlock()
	ops := make([]core.BatchOp, 0, len(b.ents))
	for p, e := range b.ents {
		switch {
		case e.del && e.baseHas:
			ops = append(ops, core.BatchOp{Delete: true, P: p})
		case !e.del && !e.baseHas:
			ops = append(ops, core.BatchOp{P: p})
		}
	}
	sortOps(ops)
	return ops
}
