// Package wbuf is the write-optimized update path (dynamic
// indexability): a Buffered decorator absorbs INSERT/DELETE into an
// in-memory delta buffer and answers queries by merging the buffered
// deltas with the base structure, so a write costs a tiny journal
// append instead of a full O(log_B N) structural update. The buffer is
// bulk-flushed through the existing group-commit plumbing
// (core.Durable.Batch / core.Concurrent.ApplyBatch) when it crosses a
// size or age threshold, dropping amortized update I/O toward
// o(log_B N) — the tradeoff Yi's dynamic-indexability bound says
// buffering is *required* to reach.
//
// Crash safety comes from a sidecar journal: every buffered-but-
// unflushed operation is appended to a checksummed record log (CRC-32C
// with sequence mixing, the eio convention) and fsynced — group-
// committed across concurrent writers — before the write is
// acknowledged. Reopen replays the journal through the same staging
// logic; replay is idempotent against any flush prefix, so a crash
// anywhere between "record durable" and "journal truncated after
// flush" converges to exactly the acknowledged state.
package wbuf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"rangesearch/internal/core"
	"rangesearch/internal/geom"
)

// Journal record layout (little-endian, matching eio):
//
//	magic  uint32  journalMagic
//	seq    uint64  strictly increasing from 1 within one journal file
//	count  uint32  operations in this record, 1..MaxRecordOps
//	ops    count × 17 bytes: kind(1) x(8) y(8)
//	crc    uint32  CRC-32C over the record bytes before it, mixed with seq
//
// A record is the unit of durability: one group commit appends one or
// more whole records and fsyncs. Replay stops at the first record that
// fails to decode — a torn tail from a crash mid-append — and truncates
// it away; everything before the tear is exactly the acknowledged
// prefix.
const (
	journalMagic = 0x5742_4a31 // "WBJ1"

	recHeaderSize = 4 + 8 + 4 // magic + seq + count
	recOpSize     = 1 + 8 + 8 // kind + x + y
	recTrailerLen = 4         // crc

	// MaxRecordOps bounds one record so a corrupt count can never force
	// a huge allocation during decode.
	MaxRecordOps = 1 << 16
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrJournalCorrupt reports a record that is structurally invalid or
// fails its checksum. During replay it marks the torn tail, not a fatal
// condition.
var ErrJournalCorrupt = errors.New("wbuf: journal record corrupt")

// recCRC checksums a record's bytes with its sequence number mixed in,
// so a record copied to the wrong position (or a stale record surviving
// a partial truncate) cannot masquerade as valid.
func recCRC(seq uint64, b []byte) uint32 {
	var sb [8]byte
	binary.LittleEndian.PutUint64(sb[:], seq)
	c := crc32.Update(0, castagnoli, sb[:])
	return crc32.Update(c, castagnoli, b)
}

// EncodedSize returns the on-disk size of a record holding n operations.
func EncodedSize(n int) int { return recHeaderSize + n*recOpSize + recTrailerLen }

// EncodeRecord appends one journal record holding ops to dst and
// returns the extended slice. len(ops) must be in [1, MaxRecordOps].
func EncodeRecord(dst []byte, seq uint64, ops []core.BatchOp) ([]byte, error) {
	if len(ops) == 0 || len(ops) > MaxRecordOps {
		return dst, fmt.Errorf("wbuf: record op count %d out of range [1,%d]", len(ops), MaxRecordOps)
	}
	start := len(dst)
	var hdr [recHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], journalMagic)
	binary.LittleEndian.PutUint64(hdr[4:], seq)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(ops)))
	dst = append(dst, hdr[:]...)
	var ob [recOpSize]byte
	for _, op := range ops {
		ob[0] = 0
		if op.Delete {
			ob[0] = 1
		}
		binary.LittleEndian.PutUint64(ob[1:], uint64(op.P.X))
		binary.LittleEndian.PutUint64(ob[9:], uint64(op.P.Y))
		dst = append(dst, ob[:]...)
	}
	crc := recCRC(seq, dst[start:])
	var tb [recTrailerLen]byte
	binary.LittleEndian.PutUint32(tb[:], crc)
	return append(dst, tb[:]...), nil
}

// DecodeRecord decodes one record from the front of b, returning its
// sequence number, operations, and total encoded length. Any structural
// problem — short buffer, bad magic, out-of-range count, checksum
// mismatch — returns an error wrapping ErrJournalCorrupt; the caller
// treats it as the torn tail of the journal.
func DecodeRecord(b []byte) (seq uint64, ops []core.BatchOp, n int, err error) {
	if len(b) < recHeaderSize+recOpSize+recTrailerLen {
		return 0, nil, 0, fmt.Errorf("%w: %d bytes, need at least %d",
			ErrJournalCorrupt, len(b), recHeaderSize+recOpSize+recTrailerLen)
	}
	if m := binary.LittleEndian.Uint32(b[0:]); m != journalMagic {
		return 0, nil, 0, fmt.Errorf("%w: bad magic %#x", ErrJournalCorrupt, m)
	}
	seq = binary.LittleEndian.Uint64(b[4:])
	count := binary.LittleEndian.Uint32(b[12:])
	if count == 0 || count > MaxRecordOps {
		return 0, nil, 0, fmt.Errorf("%w: op count %d out of range", ErrJournalCorrupt, count)
	}
	n = recHeaderSize + int(count)*recOpSize + recTrailerLen
	if len(b) < n {
		return 0, nil, 0, fmt.Errorf("%w: truncated record (%d of %d bytes)", ErrJournalCorrupt, len(b), n)
	}
	body := n - recTrailerLen
	want := binary.LittleEndian.Uint32(b[body:])
	if got := recCRC(seq, b[:body]); got != want {
		return 0, nil, 0, fmt.Errorf("%w: checksum %#x, want %#x", ErrJournalCorrupt, got, want)
	}
	ops = make([]core.BatchOp, count)
	for i := range ops {
		off := recHeaderSize + i*recOpSize
		if b[off] > 1 {
			return 0, nil, 0, fmt.Errorf("%w: unknown op kind %d", ErrJournalCorrupt, b[off])
		}
		ops[i] = core.BatchOp{
			Delete: b[off] == 1,
			P: geom.Point{
				X: int64(binary.LittleEndian.Uint64(b[off+1:])),
				Y: int64(binary.LittleEndian.Uint64(b[off+9:])),
			},
		}
	}
	return seq, ops, n, nil
}

// ScanJournal decodes every valid record from raw in order. It returns
// the concatenated operations, the byte length of the valid prefix, and
// the sequence number of the last valid record. Decoding stops — without
// error — at the first corrupt or torn record; sequence regressions
// (seq not strictly increasing) also terminate the scan, since they can
// only come from stale bytes beyond a partial truncate.
func ScanJournal(raw []byte) (ops []core.BatchOp, validLen int64, lastSeq uint64) {
	for int(validLen) < len(raw) {
		seq, recOps, n, err := DecodeRecord(raw[validLen:])
		if err != nil || seq <= lastSeq {
			break
		}
		ops = append(ops, recOps...)
		validLen += int64(n)
		lastSeq = seq
	}
	return ops, validLen, lastSeq
}

// Journal is the append-only sidecar log of buffered-but-unflushed
// operations. Appends stage encoded records in memory under the
// staging lock; Sync is a group commit — the first caller to need
// durability becomes the leader, writes every staged byte, fsyncs once,
// and wakes all waiters whose records that covered. Reset truncates
// the file after a successful flush.
type Journal struct {
	path string
	f    *os.File

	mu     sync.Mutex // guards staged/seq
	staged []byte
	seq    uint64 // last staged record sequence

	syncMu  sync.Mutex // guards synced/syncing/closed, serializes leaders
	syncNow sync.Cond
	syncing bool
	closed  bool
	synced  uint64 // last sequence durably on disk
	syncErr error  // sticky: a journal that failed to sync is dead

	bytes int64 // durable file size

	appends uint64
	syncs   uint64
}

// OpenJournal opens (creating if absent) the journal at path, scans the
// existing contents, truncates any torn tail, and returns the journal
// positioned to append after the valid prefix together with the
// operations the valid prefix holds — the caller replays them through
// its staging logic before accepting new writes.
func OpenJournal(path string) (*Journal, []core.BatchOp, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wbuf: open journal: %w", err)
	}
	raw, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wbuf: read journal: %w", err)
	}
	ops, validLen, lastSeq := ScanJournal(raw)
	if int(validLen) != len(raw) {
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wbuf: truncate torn journal tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wbuf: sync truncated journal: %w", err)
		}
	}
	if _, err := f.Seek(validLen, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wbuf: seek journal: %w", err)
	}
	j := &Journal{path: path, f: f, seq: lastSeq, synced: lastSeq, bytes: validLen}
	j.syncNow.L = &j.syncMu
	return j, ops, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Append stages one record holding ops and returns its sequence number
// to pass to Sync. The record is NOT durable until Sync(seq) returns.
func (j *Journal) Append(ops []core.BatchOp) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	var err error
	j.staged, err = EncodeRecord(j.staged, j.seq, ops)
	if err != nil {
		j.seq--
		return 0, err
	}
	j.appends++
	return j.seq, nil
}

// Sync makes every record up to seq durable. Concurrent callers group-
// commit: one leader writes and fsyncs all staged bytes, covering every
// waiter staged before it grabbed the buffer.
func (j *Journal) Sync(seq uint64) error {
	j.syncMu.Lock()
	defer j.syncMu.Unlock()
	for {
		if j.syncErr != nil {
			return j.syncErr
		}
		if j.synced >= seq {
			return nil
		}
		if j.syncing {
			j.syncNow.Wait()
			continue
		}
		// Become the leader: take everything staged right now.
		j.mu.Lock()
		buf, upTo := j.staged, j.seq
		j.staged = nil
		j.mu.Unlock()
		j.syncing = true
		j.syncMu.Unlock()

		var err error
		if len(buf) > 0 {
			if _, err = j.f.Write(buf); err == nil {
				err = j.f.Sync()
			}
		}

		j.syncMu.Lock()
		j.syncing = false
		if err != nil {
			j.syncErr = fmt.Errorf("wbuf: journal sync: %w", err)
		} else {
			j.synced = upTo
			j.bytes += int64(len(buf))
			j.syncs++
		}
		j.syncNow.Broadcast()
	}
}

// Reset empties the journal after a successful flush: every staged or
// durable record is superseded by the flushed base state. It waits out
// any in-flight leader write, truncates the file, and marks everything
// staged as synced so pending Sync callers return immediately.
func (j *Journal) Reset() error {
	j.syncMu.Lock()
	defer j.syncMu.Unlock()
	for j.syncing {
		j.syncNow.Wait()
	}
	if j.syncErr != nil {
		return j.syncErr
	}
	j.mu.Lock()
	j.staged = nil
	upTo := j.seq
	j.mu.Unlock()
	if err := j.f.Truncate(0); err != nil {
		j.syncErr = fmt.Errorf("wbuf: journal reset: %w", err)
		return j.syncErr
	}
	if err := j.f.Sync(); err != nil {
		j.syncErr = fmt.Errorf("wbuf: journal reset sync: %w", err)
		return j.syncErr
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		j.syncErr = fmt.Errorf("wbuf: journal reset seek: %w", err)
		return j.syncErr
	}
	j.synced = upTo
	j.bytes = 0
	j.syncNow.Broadcast()
	return nil
}

// Bytes returns the durable journal size in bytes.
func (j *Journal) Bytes() int64 {
	j.syncMu.Lock()
	defer j.syncMu.Unlock()
	return j.bytes
}

// Counters returns lifetime append and fsync counts.
func (j *Journal) Counters() (appends, syncs uint64) {
	j.mu.Lock()
	appends = j.appends
	j.mu.Unlock()
	j.syncMu.Lock()
	syncs = j.syncs
	j.syncMu.Unlock()
	return appends, syncs
}

// Close closes the journal file. It does not remove it: an unflushed
// journal must survive for the next open to replay. Close is
// idempotent.
func (j *Journal) Close() error {
	j.syncMu.Lock()
	for j.syncing {
		j.syncNow.Wait()
	}
	if j.closed {
		j.syncMu.Unlock()
		return nil
	}
	j.closed = true
	j.syncMu.Unlock()
	return j.f.Close()
}

// Remove deletes the journal file (after Destroy of the base).
func (j *Journal) Remove() error {
	if err := os.Remove(j.path); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}
