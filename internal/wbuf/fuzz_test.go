package wbuf

import (
	"testing"

	"rangesearch/internal/core"
	"rangesearch/internal/geom"
)

// FuzzDecodeBufJournal throws hostile bytes at the journal record
// decoder: it must never panic or over-allocate, any successful decode
// must re-encode to exactly the bytes it consumed (canonical form), and
// ScanJournal over the same input must terminate with a valid-prefix
// length it can stand behind.
func FuzzDecodeBufJournal(f *testing.F) {
	seed := func(seq uint64, ops []core.BatchOp) {
		enc, err := EncodeRecord(nil, seq, ops)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	seed(1, []core.BatchOp{{P: geom.Point{X: 1, Y: 2}}})
	seed(2, []core.BatchOp{{Delete: true, P: geom.Point{X: -5, Y: 1 << 40}}})
	seed(7, sampleOps(13))
	two, _ := EncodeRecord(nil, 1, sampleOps(2))
	two, _ = EncodeRecord(two, 2, sampleOps(5))
	f.Add(two)
	f.Add([]byte{})
	f.Add([]byte{0x31, 0x4a, 0x42, 0x57}) // bare magic

	f.Fuzz(func(t *testing.T, data []byte) {
		seq, ops, n, err := DecodeRecord(data)
		if err == nil {
			if n <= 0 || n > len(data) {
				t.Fatalf("decoded length %d out of [1,%d]", n, len(data))
			}
			if len(ops) == 0 || len(ops) > MaxRecordOps {
				t.Fatalf("decoded %d ops", len(ops))
			}
			re, err := EncodeRecord(nil, seq, ops)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if len(re) != n {
				t.Fatalf("re-encoded %d bytes, decoded %d", len(re), n)
			}
			for i := range re {
				if re[i] != data[i] {
					t.Fatalf("re-encode differs at byte %d", i)
				}
			}
		}
		// ScanJournal must terminate and report a prefix that rescans to
		// itself.
		opsAll, validLen, lastSeq := ScanJournal(data)
		if validLen < 0 || validLen > int64(len(data)) {
			t.Fatalf("validLen %d out of range", validLen)
		}
		ops2, len2, seq2 := ScanJournal(data[:validLen])
		if len2 != validLen || seq2 != lastSeq || len(ops2) != len(opsAll) {
			t.Fatalf("rescan of valid prefix diverged: (%d,%d,%d) vs (%d,%d,%d)",
				len(ops2), len2, seq2, len(opsAll), validLen, lastSeq)
		}
	})
}
