package wbuf

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"rangesearch/internal/core"
	"rangesearch/internal/eio"
	"rangesearch/internal/epst"
	"rangesearch/internal/geom"
)

const testDomain = 1 << 10

func newBase(t *testing.T) core.Index {
	t.Helper()
	mem := eio.NewMemStore(512)
	idx, err := core.NewThreeSided(mem, epst.Options{})
	if err != nil {
		t.Fatalf("base: %v", err)
	}
	t.Cleanup(func() { mem.Close() })
	return idx
}

// model is the naive reference: a set of points.
type model map[geom.Point]bool

func (m model) insert(p geom.Point) error {
	if m[p] {
		return core.ErrDuplicate
	}
	m[p] = true
	return nil
}

func (m model) delete(p geom.Point) bool {
	if !m[p] {
		return false
	}
	delete(m, p)
	return true
}

func (m model) query(q geom.Rect) []geom.Point {
	var out []geom.Point
	for p := range m {
		if q.Contains(p) {
			out = append(out, p)
		}
	}
	geom.SortByX(out)
	return out
}

func checkQuery(t *testing.T, b *Buffered, m model, q geom.Rect) {
	t.Helper()
	got, err := b.Query(nil, q)
	if err != nil {
		t.Fatalf("query %+v: %v", q, err)
	}
	want := m.query(q)
	if len(got) != len(want) {
		t.Fatalf("query %+v: got %d points, want %d\ngot:  %v\nwant: %v", q, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("query %+v: point %d = %v, want %v", q, i, got[i], want[i])
		}
	}
}

func TestBufferedSemantics(t *testing.T) {
	base := newBase(t)
	b, err := NewBuffered(base, Options{MaxOps: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	p := geom.Point{X: 5, Y: 7}

	// Insert, duplicate insert, delete, delete-again, re-insert.
	if err := b.Insert(p); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if err := b.Insert(p); !errors.Is(err, core.ErrDuplicate) {
		t.Fatalf("dup insert: got %v, want ErrDuplicate", err)
	}
	if found, err := b.Delete(p); err != nil || !found {
		t.Fatalf("delete: found=%v err=%v", found, err)
	}
	if found, err := b.Delete(p); err != nil || found {
		t.Fatalf("re-delete: found=%v err=%v, want false", found, err)
	}
	if err := b.Insert(p); err != nil {
		t.Fatalf("re-insert: %v", err)
	}
	if n, err := b.Len(); err != nil || n != 1 {
		t.Fatalf("len: %d err=%v, want 1", n, err)
	}

	// Sentinel coordinates rejected without staging.
	bad := geom.Point{X: geom.MaxCoord, Y: 1}
	if err := b.Insert(bad); !errors.Is(err, core.ErrCoordRange) {
		t.Fatalf("sentinel insert: got %v, want ErrCoordRange", err)
	}
	if _, err := b.Delete(bad); !errors.Is(err, core.ErrCoordRange) {
		t.Fatalf("sentinel delete: got %v, want ErrCoordRange", err)
	}

	// Duplicate/found semantics against points living in the BASE, not
	// the buffer.
	q := geom.Point{X: 9, Y: 9}
	if err := base.Insert(q); err != nil {
		t.Fatal(err)
	}
	if err := b.Insert(q); !errors.Is(err, core.ErrDuplicate) {
		t.Fatalf("insert of base-resident point: got %v, want ErrDuplicate", err)
	}
	if found, err := b.Delete(q); err != nil || !found {
		t.Fatalf("delete of base-resident point: found=%v err=%v", found, err)
	}
	if err := b.Insert(q); err != nil {
		t.Fatalf("re-insert of tombstoned base point: %v", err)
	}
	// Net effect: q deleted then re-inserted — must appear exactly once.
	res, err := b.Query(nil, geom.Rect{XLo: 9, XHi: 9, YLo: 9, YHi: 9})
	if err != nil || len(res) != 1 {
		t.Fatalf("merged point query: %v err=%v, want exactly one hit", res, err)
	}
}

func TestBufferedDifferentialRandom(t *testing.T) {
	base := newBase(t)
	b, err := NewBuffered(base, Options{MaxOps: 64}) // frequent flushes
	if err != nil {
		t.Fatal(err)
	}
	m := model{}
	rng := rand.New(rand.NewSource(42))
	nOps := 6000
	if testing.Short() {
		nOps = 1200
	}
	for i := 0; i < nOps; i++ {
		p := geom.Point{X: rng.Int63n(testDomain), Y: rng.Int63n(testDomain)}
		switch r := rng.Float64(); {
		case r < 0.5:
			gotErr := b.Insert(p)
			wantErr := m.insert(p)
			if (gotErr == nil) != (wantErr == nil) || (wantErr != nil && !errors.Is(gotErr, core.ErrDuplicate)) {
				t.Fatalf("op %d insert %v: got %v, want %v", i, p, gotErr, wantErr)
			}
		case r < 0.75:
			got, err := b.Delete(p)
			if err != nil {
				t.Fatalf("op %d delete %v: %v", i, p, err)
			}
			if want := m.delete(p); got != want {
				t.Fatalf("op %d delete %v: found=%v, want %v", i, p, got, want)
			}
		default:
			lo, hi := rng.Int63n(testDomain), rng.Int63n(testDomain)
			if lo > hi {
				lo, hi = hi, lo
			}
			ylo, yhi := rng.Int63n(testDomain), rng.Int63n(testDomain)
			if ylo > yhi {
				ylo, yhi = yhi, ylo
			}
			checkQuery(t, b, m, geom.Rect{XLo: lo, XHi: hi, YLo: ylo, YHi: yhi})
		}
		if i%128 == 0 {
			n, err := b.Len()
			if err != nil {
				t.Fatal(err)
			}
			if n != len(m) {
				t.Fatalf("op %d: len=%d, want %d", i, n, len(m))
			}
		}
	}
	// Final flush, then verify the base alone matches the model.
	if err := b.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if b.Depth() != 0 {
		t.Fatalf("depth after flush: %d", b.Depth())
	}
	all := geom.Rect{XLo: 0, XHi: testDomain, YLo: 0, YHi: testDomain}
	got, err := base.Query(nil, all)
	if err != nil {
		t.Fatal(err)
	}
	geom.SortByX(got)
	want := m.query(all)
	if len(got) != len(want) {
		t.Fatalf("base after flush: %d points, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("base after flush: point %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBufferedSizeThresholdFlush(t *testing.T) {
	base := newBase(t)
	b, err := NewBuffered(base, Options{MaxOps: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 20; i++ {
		if err := b.Insert(geom.Point{X: i, Y: i}); err != nil {
			t.Fatal(err)
		}
	}
	s := b.WriteBufferStats()
	if s.Flushes == 0 {
		t.Fatalf("no flush after %d inserts with MaxOps=8: %+v", 20, s)
	}
	if b.Depth() >= 8 {
		t.Fatalf("depth %d not kept under threshold", b.Depth())
	}
	if n, _ := b.Len(); n != 20 {
		t.Fatalf("len=%d, want 20", n)
	}
}

func TestBufferedJournalReplayOnReopen(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "wbuf.journal")

	mem := eio.NewMemStore(512)
	defer mem.Close()
	idx, err := core.NewThreeSided(mem, epst.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hdr := idx.HeaderID()

	b, err := NewBuffered(idx, Options{MaxOps: 1 << 20, Journal: jpath})
	if err != nil {
		t.Fatal(err)
	}
	m := model{}
	for i := int64(0); i < 50; i++ {
		p := geom.Point{X: i, Y: i * 3 % 97}
		if err := b.Insert(p); err != nil {
			t.Fatal(err)
		}
		m.insert(p)
	}
	for i := int64(0); i < 50; i += 5 {
		p := geom.Point{X: i, Y: i * 3 % 97}
		if _, err := b.Delete(p); err != nil {
			t.Fatal(err)
		}
		m.delete(p)
	}
	// SIGKILL: drop b on the floor — no Flush, no Close. The base never
	// saw any of it; only the journal did.
	if n, _ := idx.Len(); n != 0 {
		t.Fatalf("base len before crash: %d, want 0 (nothing flushed)", n)
	}

	reopened, err := core.OpenThreeSided(mem, hdr)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := NewBuffered(reopened, Options{MaxOps: 1 << 20, Journal: jpath})
	if err != nil {
		t.Fatalf("reopen with journal: %v", err)
	}
	defer b2.Close()
	if n, _ := b2.Len(); n != len(m) {
		t.Fatalf("len after replay: %d, want %d", n, len(m))
	}
	// Replay flushes: journal must be empty and the base complete.
	if got := b2.Depth(); got != 0 {
		t.Fatalf("depth after replay: %d, want 0", got)
	}
	checkQuery(t, b2, m, geom.Rect{XLo: 0, XHi: testDomain, YLo: 0, YHi: testDomain})
}

func TestBufferedConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	mem := eio.NewMemStore(512)
	defer mem.Close()
	idx, err := core.NewThreeSided(mem, epst.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBuffered(idx, Options{MaxOps: 256, Journal: filepath.Join(dir, "j")})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				p := geom.Point{X: int64(w*per + i), Y: int64(i)}
				if err := b.Insert(p); err != nil {
					t.Errorf("worker %d insert %v: %v", w, p, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if n, _ := b.Len(); n != workers*per {
		t.Fatalf("len=%d, want %d", n, workers*per)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if n, _ := idx.Len(); n != workers*per {
		t.Fatalf("base len after close: %d, want %d", n, workers*per)
	}
}

func TestBufferedBatch(t *testing.T) {
	base := newBase(t)
	b, err := NewBuffered(base, Options{MaxOps: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ops := []core.BatchOp{
		{P: geom.Point{X: 1, Y: 1}},
		{P: geom.Point{X: 1, Y: 1}},               // dup
		{Delete: true, P: geom.Point{X: 1, Y: 1}}, // found
		{Delete: true, P: geom.Point{X: 2, Y: 2}}, // absent
		{P: geom.Point{X: 3, Y: 3}},
	}
	res := b.ApplyBatch(ops)
	if res[0].Err != nil {
		t.Fatalf("op0: %v", res[0].Err)
	}
	if !errors.Is(res[1].Err, core.ErrDuplicate) {
		t.Fatalf("op1: got %v, want ErrDuplicate", res[1].Err)
	}
	if res[2].Err != nil || !res[2].Found {
		t.Fatalf("op2: found=%v err=%v", res[2].Found, res[2].Err)
	}
	if res[3].Err != nil || res[3].Found {
		t.Fatalf("op3: found=%v err=%v, want not found", res[3].Found, res[3].Err)
	}
	if n, _ := b.Len(); n != 1 {
		t.Fatalf("len=%d, want 1", n)
	}
}

// TestBufferedFlushOrderDeterministic pins the collapse order: flushes
// apply in canonical (x, y) order regardless of staging order.
func TestBufferedFlushOrderDeterministic(t *testing.T) {
	base := newBase(t)
	b, err := NewBuffered(base, Options{MaxOps: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	pts := []geom.Point{{X: 9, Y: 1}, {X: 2, Y: 8}, {X: 5, Y: 5}, {X: 2, Y: 1}}
	for _, p := range pts {
		if err := b.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := base.Query(nil, geom.Rect{XLo: 0, XHi: 10, YLo: 0, YHi: 10})
	if err != nil {
		t.Fatal(err)
	}
	geom.SortByX(got)
	want := append([]geom.Point(nil), pts...)
	sort.Slice(want, func(i, k int) bool { return want[i].Less(want[k]) })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestJournalOrderMatchesStagingOrder is the crash-consistency
// regression for racing writers on the SAME point: the journal record
// sequence is assigned under the staging lock, so replay (last-op-wins
// in sequence order) must reconstruct exactly the state the live buffer
// acknowledged. If staging and appending ever become separate critical
// sections again, a delete/insert race journals in the wrong order and
// this test's post-"crash" replay diverges from the live Query.
func TestJournalOrderMatchesStagingOrder(t *testing.T) {
	dir := t.TempDir()
	base := newBase(t)
	jpath := filepath.Join(dir, "j")
	b, err := NewBuffered(base, Options{MaxOps: 1 << 20, Journal: jpath})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// A tiny shared key set maximizes same-point interleavings.
	points := []geom.Point{{X: 1, Y: 1}, {X: 2, Y: 2}, {X: 3, Y: 3}, {X: 4, Y: 4}}
	const workers, iters = 8, 250
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				p := points[rng.Intn(len(points))]
				if rng.Intn(2) == 0 {
					if err := b.Insert(p); err != nil && !errors.Is(err, core.ErrDuplicate) {
						t.Errorf("insert %v: %v", p, err)
						return
					}
				} else if _, err := b.Delete(p); err != nil {
					t.Errorf("delete %v: %v", p, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Simulate a crash: read the journal as the next boot would, WITHOUT
	// Close (which would flush and truncate it). Every acknowledged write
	// has group-committed, so the file holds the full record sequence.
	raw, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	ops, validLen, _ := ScanJournal(raw)
	if int(validLen) != len(raw) {
		t.Fatalf("journal has a torn tail without a crash: valid %d of %d bytes", validLen, len(raw))
	}
	visible := make(map[geom.Point]bool)
	for _, op := range ops {
		visible[op.P] = !op.Delete
	}
	var want []geom.Point
	for p, v := range visible {
		if v {
			want = append(want, p)
		}
	}
	geom.SortByX(want)
	got, err := b.Query(nil, geom.Rect{XLo: 0, XHi: 10, YLo: 0, YHi: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replay state diverges from acknowledged state:\nreplay: %v\nlive:   %v", want, got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("replay point %d = %v, live has %v", i, want[i], got[i])
		}
	}
}

// TestBufferedCloseIdempotent pins that Close is safe to call twice and
// after Destroy (no double close(b.stop) panic, no journal double-close
// error).
func TestBufferedCloseIdempotent(t *testing.T) {
	dir := t.TempDir()
	b, err := NewBuffered(newBase(t), Options{Journal: filepath.Join(dir, "j"), MaxAge: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Insert(geom.Point{X: 1, Y: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}

	b2, err := NewBuffered(newBase(t), Options{Journal: filepath.Join(dir, "j2")})
	if err != nil {
		t.Fatal(err)
	}
	if err := b2.Insert(geom.Point{X: 2, Y: 2}); err != nil {
		t.Fatal(err)
	}
	if err := b2.Destroy(); err != nil {
		t.Fatalf("destroy: %v", err)
	}
	if err := b2.Close(); err != nil {
		t.Fatalf("close after destroy: %v", err)
	}
}
