package wbuf

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"rangesearch/internal/core"
	"rangesearch/internal/geom"
	"rangesearch/internal/obs"
	"rangesearch/internal/trace"
)

// Default thresholds: flush when the buffer holds DefaultMaxOps entries
// or its oldest entry is DefaultMaxAge old, whichever comes first.
const (
	DefaultMaxOps     = 4096
	DefaultFlushChunk = 256
)

// DefaultMaxAge bounds how long an acknowledged write may sit in the
// buffer before a background flush folds it into the base structure.
const DefaultMaxAge = 2 * time.Second

// Options tunes a Buffered decorator. The zero value buffers up to
// DefaultMaxOps operations with no journal (not crash-safe — fine for
// purely in-memory stacks and model tests, wrong for a durable server).
type Options struct {
	// MaxOps is the size threshold: staging the MaxOps-th distinct point
	// triggers a synchronous flush on the staging writer. 0 means
	// DefaultMaxOps; 1 degenerates to write-through.
	MaxOps int
	// MaxAge, when > 0, arms a background flusher that drains the buffer
	// whenever its oldest entry is older than MaxAge, bounding how stale
	// the base structure may get under a trickle of writes.
	MaxAge time.Duration
	// Journal is the sidecar journal path; "" disables journaling and
	// with it crash safety of buffered writes.
	Journal string
	// FlushChunk bounds how many collapsed operations one Durable.Batch
	// transaction may carry, so a flush never overflows the WAL.
	// 0 means DefaultFlushChunk. Concurrent bases chunk internally and
	// ignore it.
	FlushChunk int
}

func (o Options) withDefaults() Options {
	if o.MaxOps <= 0 {
		o.MaxOps = DefaultMaxOps
	}
	if o.FlushChunk <= 0 {
		o.FlushChunk = DefaultFlushChunk
	}
	return o
}

// entry is one buffered point delta. op says what the buffer holds for
// the point (a pending insert or a tombstone); baseHas caches whether
// the base structure contained the point when it was first touched, so
// duplicate/found semantics and the flush collapse are exact without
// re-probing.
type entry struct {
	del     bool // true: tombstone; false: pending insert
	baseHas bool
}

// Buffered decorates a core.Index with a write buffer: updates stage
// in-memory deltas (journaled for crash safety when Options.Journal is
// set), queries merge the deltas with base results in canonical (x,y)
// order, and crossing a size/age threshold bulk-flushes the buffer
// through the strongest batch interface the base offers —
// *core.Concurrent.ApplyBatch, *core.Durable.Batch, or plain
// per-operation calls.
//
// Buffered must be the base's only writer: the staged deltas cache
// base-membership facts (entry.baseHas) that a side-channel write would
// invalidate. Reads of the base may happen freely elsewhere; they just
// won't see unflushed deltas.
type Buffered struct {
	mu   sync.RWMutex
	base core.Index
	ents map[geom.Point]entry
	net  int // inserts minus deletes staged (Len delta)

	oldest time.Time // when the oldest unflushed entry was staged

	opts Options
	j    *Journal

	stop chan struct{} // closes the age flusher
	wg   sync.WaitGroup

	statMu     sync.Mutex
	flushes    uint64
	flushedOps uint64
	lastFlush  int
	probes     uint64
	replayed   uint64 // journaled ops re-staged by NewBuffered
	flushNs    obs.Histogram
	flushOps   obs.Histogram
}

var _ core.Index = (*Buffered)(nil)

// NewBuffered wraps base. When opts.Journal names a file, an existing
// journal is replayed through the staging logic first — restoring every
// acknowledged-but-unflushed write — and then immediately flushed, so a
// reopened index starts with an empty buffer and a truncated journal.
func NewBuffered(base core.Index, opts Options) (*Buffered, error) {
	opts = opts.withDefaults()
	b := &Buffered{
		base: base,
		ents: make(map[geom.Point]entry),
		opts: opts,
		stop: make(chan struct{}),
	}
	if opts.Journal != "" {
		j, replay, err := OpenJournal(opts.Journal)
		if err != nil {
			return nil, err
		}
		b.j = j
		if len(replay) > 0 {
			if err := b.replay(replay); err != nil {
				j.Close()
				return nil, err
			}
		}
	}
	if opts.MaxAge > 0 {
		b.wg.Add(1)
		go b.ageFlusher()
	}
	return b, nil
}

// replay re-stages journaled operations in order (last op per point
// wins, exactly as the live path staged them) and flushes the result.
// Staging probes the base fresh, so replaying against a base that
// already absorbed part or all of a flush converges instead of
// double-applying: an insert the flush landed reads back as baseHas and
// stages nothing.
func (b *Buffered) replay(ops []core.BatchOp) error {
	for _, op := range ops {
		var err error
		if op.Delete {
			_, err = b.stage(op.P, true)
		} else {
			_, err = b.stage(op.P, false)
		}
		if err != nil && !benign(err) {
			return fmt.Errorf("wbuf: journal replay: %w", err)
		}
	}
	b.statMu.Lock()
	b.replayed += uint64(len(ops))
	b.statMu.Unlock()
	return b.Flush()
}

// benign mirrors core's per-operation outcomes that are answers, not
// failures.
func benign(err error) bool {
	return err == nil || errors.Is(err, core.ErrDuplicate) || errors.Is(err, core.ErrCoordRange)
}

func checkCoord(p geom.Point) error {
	if p.X == geom.MinCoord || p.X == geom.MaxCoord || p.Y == geom.MinCoord || p.Y == geom.MaxCoord {
		return fmt.Errorf("wbuf: %v: %w", p, core.ErrCoordRange)
	}
	return nil
}

// probe asks the base whether it stores p (one point query — an
// O(log_B N) read, no writes: the cost that remains on the buffered
// update path).
func (b *Buffered) probe(p geom.Point) (bool, error) {
	b.statMu.Lock()
	b.probes++
	b.statMu.Unlock()
	res, err := b.base.Query(nil, geom.Rect{XLo: p.X, XHi: p.X, YLo: p.Y, YHi: p.Y})
	if err != nil {
		return false, err
	}
	return len(res) > 0, nil
}

// stage applies one operation to the buffer under b.mu and reports the
// operation's outcome exactly as the undecorated index would: inserting
// a visible point is core.ErrDuplicate, deleting reports found. It does
// NOT journal or flush — only replay uses it, where the journal records
// already exist; live writes go through write().
func (b *Buffered) stage(p geom.Point, del bool) (found bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stageLocked(p, del)
}

func (b *Buffered) stageLocked(p geom.Point, del bool) (found bool, err error) {
	if err := checkCoord(p); err != nil {
		return false, err
	}
	e, ok := b.ents[p]
	var visible bool
	if ok {
		visible = !e.del
	} else {
		has, err := b.probe(p)
		if err != nil {
			return false, err
		}
		e = entry{baseHas: has}
		visible = has
	}
	if del {
		if !visible {
			return false, nil // nothing staged: deleting an absent point is a no-op
		}
		e.del = true
		b.net--
	} else {
		if visible {
			return false, fmt.Errorf("wbuf: %v: %w", p, core.ErrDuplicate)
		}
		e.del = false
		b.net++
	}
	if len(b.ents) == 0 {
		b.oldest = time.Now()
	}
	b.ents[p] = e
	return del, nil
}

// write is the one live update path: it stages ops and appends their
// journal record under a single b.mu hold, flushes synchronously if the
// buffer crossed the size threshold (attributed to sp's flush phase),
// and finally group-commits the journal fsync outside the lock
// (attributed to sp's sync phase).
//
// The append MUST happen while b.mu is still held: Journal.Append
// assigns the record's sequence number, and replay is last-op-wins in
// sequence order. If staging and appending were separate critical
// sections, two connections racing on the same point could stage
// delete-then-insert but journal insert-then-delete, and a crash would
// recover the opposite of the acknowledged state. Holding b.mu across
// both makes journal order identical to staging order; the fsync stays
// outside the lock so concurrent writers still group-commit.
//
// The flush-before-sync order is safe: a flush makes the staged ops
// durable through the base's own WAL, superseding their journal records
// entirely (Reset marks them synced, so skipping Sync loses nothing).
func (b *Buffered) write(ops []core.BatchOp, sp *trace.Span) []core.BatchResult {
	start := time.Now()
	res := make([]core.BatchResult, len(ops))
	var staged []core.BatchOp
	b.mu.Lock()
	for i, op := range ops {
		found, err := b.stageLocked(op.P, op.Delete)
		res[i] = core.BatchResult{Found: found, Err: err}
		if err == nil && (!op.Delete || found) {
			staged = append(staged, op)
		}
	}
	var (
		seq  uint64
		werr error
	)
	if len(staged) > 0 && b.j != nil {
		seq, werr = b.j.Append(staged)
	}
	sp.AddPhase(trace.PhaseExecute, time.Since(start))
	flushed := false
	if werr == nil && len(staged) > 0 && len(b.ents) >= b.opts.MaxOps {
		fstart := time.Now()
		werr = b.flushLocked(sp)
		sp.AddPhase(trace.PhaseFlush, time.Since(fstart))
		flushed = true
	}
	b.mu.Unlock()
	if werr == nil && !flushed && len(staged) > 0 && b.j != nil {
		sstart := time.Now()
		werr = b.j.Sync(seq)
		sp.AddPhase(trace.PhaseSync, time.Since(sstart))
	}
	if werr != nil {
		for i := range res {
			if res[i].Err == nil {
				res[i].Err = werr
			}
		}
	}
	return res
}

// Insert implements core.Index: the point becomes visible (and, with a
// journal, durable) without touching the base structure.
func (b *Buffered) Insert(p geom.Point) error { return b.InsertTraced(p, nil) }

// InsertTraced is Insert recording journal-sync time and any triggered
// flush into sp. A nil sp is exactly Insert.
func (b *Buffered) InsertTraced(p geom.Point, sp *trace.Span) error {
	return b.write([]core.BatchOp{{P: p}}, sp)[0].Err
}

// Delete implements core.Index via a tombstone.
func (b *Buffered) Delete(p geom.Point) (bool, error) { return b.DeleteTraced(p, nil) }

// DeleteTraced is Delete with span recording; a nil sp is exactly Delete.
func (b *Buffered) DeleteTraced(p geom.Point, sp *trace.Span) (bool, error) {
	r := b.write([]core.BatchOp{{Delete: true, P: p}}, sp)[0]
	if r.Err != nil {
		return false, r.Err
	}
	return r.Found, nil
}

// ApplyBatchTraced stages a client batch as one journal record and one
// group-committed fsync, mirroring core.Concurrent's batch entry point.
// Results are positional; benign outcomes (duplicate insert, absent
// delete) stay per-entry.
func (b *Buffered) ApplyBatchTraced(ops []core.BatchOp, sp *trace.Span) []core.BatchResult {
	if len(ops) == 0 {
		return nil
	}
	return b.write(ops, sp)
}

// ApplyBatch is ApplyBatchTraced without a span.
func (b *Buffered) ApplyBatch(ops []core.BatchOp) []core.BatchResult {
	return b.ApplyBatchTraced(ops, nil)
}

// Query implements core.Index by merge-on-read: base results minus
// points the buffer overrides, plus pending inserts inside q, in
// canonical (x, y) order.
func (b *Buffered) Query(dst []geom.Point, q geom.Rect) ([]geom.Point, error) {
	return b.QueryTraced(dst, q, nil)
}

// QueryTraced is Query with span recording; a nil sp is exactly Query.
func (b *Buffered) QueryTraced(dst []geom.Point, q geom.Rect, sp *trace.Span) ([]geom.Point, error) {
	start := time.Now()
	defer func() { sp.AddPhase(trace.PhaseExecute, time.Since(start)) }()
	b.mu.RLock()
	defer b.mu.RUnlock()
	mark := len(dst)
	dst, err := b.queryBase(dst, q, sp)
	if err != nil {
		return dst[:mark], err
	}
	if len(b.ents) == 0 {
		geom.SortByX(dst[mark:]) // canonical order even with nothing to merge
		return dst, nil
	}
	// Suppress every base hit the buffer overrides (a tombstone hides
	// it; a pending re-insert reports it from the buffer instead, so it
	// appears exactly once), then add pending inserts inside q.
	kept := dst[:mark]
	for _, p := range dst[mark:] {
		if _, ok := b.ents[p]; !ok {
			kept = append(kept, p)
		}
	}
	dst = kept
	for p, e := range b.ents {
		if !e.del && q.Contains(p) {
			dst = append(dst, p)
		}
	}
	geom.SortByX(dst[mark:])
	return dst, nil
}

// queryBase routes the read through the base's traced entry point when
// it has one, so snapshot-epoch acquisition and page I/O attribute to
// the span.
func (b *Buffered) queryBase(dst []geom.Point, q geom.Rect, sp *trace.Span) ([]geom.Point, error) {
	if sp != nil {
		if tq, ok := b.base.(interface {
			QueryTraced([]geom.Point, geom.Rect, *trace.Span) ([]geom.Point, error)
		}); ok {
			return tq.QueryTraced(dst, q, sp)
		}
	}
	return b.base.Query(dst, q)
}

// Len implements core.Index: the base's count plus the buffered net
// delta.
func (b *Buffered) Len() (int, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	n, err := b.base.Len()
	if err != nil {
		return 0, err
	}
	return n + b.net, nil
}

// Depth returns the number of distinct points currently buffered.
func (b *Buffered) Depth() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.ents)
}

// Flush synchronously drains the buffer into the base and truncates the
// journal. It is a no-op on an empty buffer.
func (b *Buffered) Flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.flushLocked(nil)
}

// flushLocked collapses the buffer to its net effect and applies it
// through the strongest batch interface the base offers. Called with
// b.mu held. The journal is truncated only after the base commit
// succeeds: a crash in between leaves a journal whose full replay is
// idempotent against the flushed base.
func (b *Buffered) flushLocked(sp *trace.Span) error {
	if len(b.ents) == 0 {
		return nil
	}
	start := time.Now()
	ops := make([]core.BatchOp, 0, len(b.ents))
	for p, e := range b.ents {
		switch {
		case e.del && e.baseHas:
			ops = append(ops, core.BatchOp{Delete: true, P: p})
		case !e.del && !e.baseHas:
			ops = append(ops, core.BatchOp{P: p})
			// del && !baseHas: net no-op (insert then delete of a new point);
			// !del && baseHas: net no-op (delete then re-insert of a base point).
		}
	}
	// Deterministic, locality-friendly apply order.
	sortOps(ops)
	if err := b.applyToBase(ops, sp); err != nil {
		return err
	}
	n := len(b.ents)
	b.ents = make(map[geom.Point]entry)
	b.net = 0
	b.oldest = time.Time{}
	if b.j != nil {
		if err := b.j.Reset(); err != nil {
			return err
		}
	}
	b.statMu.Lock()
	b.flushes++
	b.flushedOps += uint64(n)
	b.lastFlush = n
	b.flushNs.Observe(uint64(time.Since(start)))
	b.flushOps.Observe(uint64(n))
	b.statMu.Unlock()
	return nil
}

// sortOps orders ops by canonical point order.
func sortOps(ops []core.BatchOp) {
	sort.Slice(ops, func(i, k int) bool { return ops[i].P.Less(ops[k].P) })
}

// applyToBase lands the collapsed operations in the base. Benign
// per-operation outcomes are tolerated: they only occur when a crash
// landed part of a previous flush and replay re-derived the same ops.
func (b *Buffered) applyToBase(ops []core.BatchOp, sp *trace.Span) error {
	if len(ops) == 0 {
		return nil
	}
	switch base := b.base.(type) {
	case *core.Concurrent:
		for _, r := range base.ApplyBatchTraced(ops, sp) {
			if !benign(r.Err) {
				return fmt.Errorf("wbuf: flush: %w", r.Err)
			}
		}
		return nil
	case *core.Durable:
		for len(ops) > 0 {
			chunk := ops
			if len(chunk) > b.opts.FlushChunk {
				chunk = chunk[:b.opts.FlushChunk]
			}
			ops = ops[len(chunk):]
			err := base.Batch(func(idx core.Index) error {
				return applyOps(idx, chunk)
			})
			if err != nil {
				return fmt.Errorf("wbuf: flush: %w", err)
			}
		}
		return nil
	default:
		return applyOps(b.base, ops)
	}
}

func applyOps(idx core.Index, ops []core.BatchOp) error {
	for _, op := range ops {
		var err error
		if op.Delete {
			_, err = idx.Delete(op.P)
		} else {
			err = idx.Insert(op.P)
		}
		if !benign(err) {
			return err
		}
	}
	return nil
}

// ageFlusher drains the buffer whenever its oldest entry exceeds
// MaxAge, bounding base staleness under write trickles.
func (b *Buffered) ageFlusher() {
	defer b.wg.Done()
	tick := b.opts.MaxAge / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-b.stop:
			return
		case <-t.C:
			b.mu.Lock()
			if !b.oldest.IsZero() && time.Since(b.oldest) >= b.opts.MaxAge {
				b.flushLocked(nil) // sticky journal errors resurface on the write path
			}
			b.mu.Unlock()
		}
	}
}

// Close flushes the buffer, stops the age flusher, and closes the
// journal (leaving the — now empty — file in place). Close is
// idempotent, including after Destroy.
func (b *Buffered) Close() error {
	select {
	case <-b.stop:
	default:
		close(b.stop)
	}
	b.wg.Wait()
	err := b.Flush()
	if b.j != nil {
		if cerr := b.j.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Destroy implements core.Index: buffered state is discarded, the base
// destroyed, and the journal removed.
func (b *Buffered) Destroy() error {
	select {
	case <-b.stop:
	default:
		close(b.stop)
	}
	b.wg.Wait()
	b.mu.Lock()
	b.ents = make(map[geom.Point]entry)
	b.net = 0
	b.mu.Unlock()
	if b.j != nil {
		b.j.Close()
		if err := b.j.Remove(); err != nil {
			return err
		}
	}
	return b.base.Destroy()
}

// Epoch delegates to a concurrent base (0 otherwise) so Buffered can
// stand in as a server backend.
func (b *Buffered) Epoch() uint64 {
	if e, ok := b.base.(interface{ Epoch() uint64 }); ok {
		return e.Epoch()
	}
	return 0
}

// PageSize delegates to a concurrent base (0 otherwise).
func (b *Buffered) PageSize() int {
	if e, ok := b.base.(interface{ PageSize() int }); ok {
		return e.PageSize()
	}
	return 0
}

// AppliedLSN delegates to a concurrent base (0 otherwise). Note the
// nuance: buffered writes are durable in the sidecar journal, not the
// base WAL, so AppliedLSN advances at flush time — read barriers
// against *this node* still see every buffered write via merge-on-read.
func (b *Buffered) AppliedLSN() uint64 {
	if e, ok := b.base.(interface{ AppliedLSN() uint64 }); ok {
		return e.AppliedLSN()
	}
	return 0
}

// WriteBufferStats implements obs.WriteBufferSource.
func (b *Buffered) WriteBufferStats() obs.WriteBufferStats {
	b.mu.RLock()
	depth := len(b.ents)
	net := b.net
	b.mu.RUnlock()
	b.statMu.Lock()
	defer b.statMu.Unlock()
	s := obs.WriteBufferStats{
		Depth:        depth,
		NetDelta:     net,
		CapOps:       b.opts.MaxOps,
		Flushes:      b.flushes,
		FlushedOps:   b.flushedOps,
		LastFlushOps: b.lastFlush,
		Probes:       b.probes,
		Replayed:     b.replayed,
		FlushP50Ms:   float64(b.flushNs.Quantile(0.50)) / 1e6,
		FlushP99Ms:   float64(b.flushNs.Quantile(0.99)) / 1e6,
		FlushMaxMs:   float64(b.flushNs.Max()) / 1e6,
		FlushOpsP50:  b.flushOps.Quantile(0.50),
		FlushOpsMax:  b.flushOps.Max(),
	}
	if b.j != nil {
		s.JournalBytes = b.j.Bytes()
		s.JournalAppends, s.JournalSyncs = b.j.Counters()
	}
	return s
}
