package wbuf

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"rangesearch/internal/core"
	"rangesearch/internal/geom"
)

func sampleOps(n int) []core.BatchOp {
	ops := make([]core.BatchOp, n)
	for i := range ops {
		ops[i] = core.BatchOp{
			Delete: i%3 == 0,
			P:      geom.Point{X: int64(i * 7), Y: int64(-i)},
		}
	}
	return ops
}

func TestRecordRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 17, 300} {
		ops := sampleOps(n)
		enc, err := EncodeRecord(nil, uint64(n)+9, ops)
		if err != nil {
			t.Fatalf("encode %d ops: %v", n, err)
		}
		if len(enc) != EncodedSize(n) {
			t.Fatalf("encoded size %d, want %d", len(enc), EncodedSize(n))
		}
		seq, got, used, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("decode %d ops: %v", n, err)
		}
		if seq != uint64(n)+9 || used != len(enc) || len(got) != n {
			t.Fatalf("decode: seq=%d used=%d len=%d", seq, used, len(got))
		}
		for i := range ops {
			if got[i] != ops[i] {
				t.Fatalf("op %d = %+v, want %+v", i, got[i], ops[i])
			}
		}
	}
}

func TestRecordRejectsCorruption(t *testing.T) {
	enc, err := EncodeRecord(nil, 3, sampleOps(4))
	if err != nil {
		t.Fatal(err)
	}
	// Flip every byte in turn: decode must fail (corrupt) or — never —
	// succeed with different content.
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0xff
		seq, ops, _, err := DecodeRecord(mut)
		if err == nil {
			// A flipped byte that still decodes must reproduce the
			// original record exactly (impossible for a single flip, so
			// this is a hard failure).
			t.Fatalf("byte %d flip: decode succeeded (seq=%d, %d ops)", i, seq, len(ops))
		}
	}
	// Truncations: every prefix must fail cleanly.
	for n := 0; n < len(enc); n++ {
		if _, _, _, err := DecodeRecord(enc[:n]); err == nil {
			t.Fatalf("prefix %d decoded", n)
		}
	}
}

func TestScanJournalTornTail(t *testing.T) {
	var buf []byte
	var err error
	for seq := uint64(1); seq <= 3; seq++ {
		buf, err = EncodeRecord(buf, seq, sampleOps(int(seq)))
		if err != nil {
			t.Fatal(err)
		}
	}
	whole := len(buf)
	// A torn tail at every cut point yields exactly the records wholly
	// before the cut.
	for cut := 0; cut <= whole; cut++ {
		ops, validLen, lastSeq := ScanJournal(buf[:cut])
		wantOps, wantLen, wantSeq := 0, 0, uint64(0)
		for seq := 1; seq <= 3; seq++ {
			end := wantLen + EncodedSize(seq)
			if end > cut {
				break
			}
			wantOps += seq
			wantLen = end
			wantSeq = uint64(seq)
		}
		if len(ops) != wantOps || validLen != int64(wantLen) || lastSeq != wantSeq {
			t.Fatalf("cut %d: got (%d ops, len %d, seq %d), want (%d, %d, %d)",
				cut, len(ops), validLen, lastSeq, wantOps, wantLen, wantSeq)
		}
	}
	// Sequence regression terminates the scan.
	regress, err := EncodeRecord(buf, 2, sampleOps(1))
	if err != nil {
		t.Fatal(err)
	}
	ops, validLen, _ := ScanJournal(regress)
	if len(ops) != 1+2+3 || validLen != int64(whole) {
		t.Fatalf("seq regression not cut: %d ops, len %d", len(ops), validLen)
	}
}

func TestJournalAppendSyncReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, replay, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replay) != 0 {
		t.Fatalf("fresh journal replays %d ops", len(replay))
	}
	seq1, err := j.Append(sampleOps(2))
	if err != nil {
		t.Fatal(err)
	}
	seq2, err := j.Append(sampleOps(3))
	if err != nil {
		t.Fatal(err)
	}
	if seq2 != seq1+1 {
		t.Fatalf("seq2=%d, want %d", seq2, seq1+1)
	}
	if err := j.Sync(seq2); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: both records replay.
	j2, replay, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replay) != 5 {
		t.Fatalf("replay %d ops, want 5", len(replay))
	}
	// Append a third record, then tear its tail off on disk; reopen
	// must recover the first two.
	seq3, err := j2.Append(sampleOps(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Sync(seq3); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	j3, replay, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replay) != 5 {
		t.Fatalf("torn reopen: replay %d ops, want 5", len(replay))
	}
	// The torn tail was truncated away on open: the file is exactly the
	// two whole records again.
	wantLen := EncodedSize(2) + EncodedSize(3)
	if raw2, _ := os.ReadFile(path); len(raw2) != wantLen || !bytes.Equal(raw2, raw[:wantLen]) {
		t.Fatalf("truncated file is %d bytes, want %d", len(raw2), wantLen)
	}
	if j3.Bytes() != int64(wantLen) {
		t.Fatalf("journal bytes %d, want %d", j3.Bytes(), wantLen)
	}

	// Reset empties the file and short-circuits pending syncs.
	if _, err := j3.Append(sampleOps(4)); err != nil {
		t.Fatal(err)
	}
	if err := j3.Reset(); err != nil {
		t.Fatal(err)
	}
	if j3.Bytes() != 0 {
		t.Fatalf("bytes after reset: %d", j3.Bytes())
	}
	seq, err := j3.Append(sampleOps(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := j3.Sync(seq); err != nil {
		t.Fatal(err)
	}
	if err := j3.Close(); err != nil {
		t.Fatal(err)
	}
	if _, replay, err = OpenJournal(path); err != nil || len(replay) != 1 {
		t.Fatalf("after reset+append: replay %d ops err=%v, want 1", len(replay), err)
	}
}
