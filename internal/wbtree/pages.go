package wbtree

import "rangesearch/internal/eio"

// AppendAllPages appends every page the tree owns — the header record and
// every node record, walked from the root — to dst and returns the extended
// slice. It is the tree's contribution to the reachability set consumed by
// eio.FindLeaks and eio.Scrub.
func (t *Tree) AppendAllPages(dst []eio.PageID) ([]eio.PageID, error) {
	dst, err := t.appendRecord(dst, t.header)
	if err != nil {
		return nil, err
	}
	m, err := t.loadMeta()
	if err != nil {
		return nil, err
	}
	return t.appendSubtree(dst, m.root)
}

func (t *Tree) appendRecord(dst []eio.PageID, id eio.PageID) ([]eio.PageID, error) {
	chain, err := t.rs.Chain(id)
	if err != nil {
		return nil, err
	}
	return append(dst, chain...), nil
}

func (t *Tree) appendSubtree(dst []eio.PageID, id eio.PageID) ([]eio.PageID, error) {
	dst, err := t.appendRecord(dst, id)
	if err != nil {
		return nil, err
	}
	n, err := t.readNode(id)
	if err != nil {
		return nil, err
	}
	for i := range n.entries {
		dst, err = t.appendSubtree(dst, n.entries[i].child)
		if err != nil {
			return nil, err
		}
	}
	return dst, nil
}
