package wbtree

import (
	"math/rand"
	"sort"
	"testing"

	"rangesearch/internal/eio"
	"rangesearch/internal/eio/eiotest"
	"rangesearch/internal/geom"
)

// TestFaultSweep fails every store operation of a build/insert/delete/query
// workload in turn and asserts the tree surfaces the injected error,
// never panics, and stays readable afterwards.
func TestFaultSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := distinctPoints(rng, 80, 1000)
	base, extra := pts[:60], pts[60:]
	sort.Slice(base, func(i, j int) bool { return base[i].Less(base[j]) })

	eiotest.Sweep(t, eiotest.Workload{
		Name:     "wbtree",
		PageSize: 128,
		Strict:   true,
		Run: func(st eio.Store) (func() error, error) {
			tr, err := Create(st, 2, 4)
			if err != nil {
				return nil, err
			}
			check := func() error {
				if _, err := tr.Len(); err != nil {
					return err
				}
				return tr.Range(
					geom.Point{X: geom.MinCoord, Y: geom.MinCoord},
					geom.Point{X: geom.MaxCoord, Y: geom.MaxCoord},
					func(geom.Point) bool { return true },
				)
			}
			if err := tr.BulkLoad(base); err != nil {
				return check, err
			}
			for _, p := range extra {
				if err := tr.Insert(p); err != nil {
					return check, err
				}
			}
			for _, p := range base[:20] {
				if _, err := tr.Delete(p); err != nil {
					return check, err
				}
			}
			n := 0
			err = tr.Range(
				geom.Point{X: 100, Y: 100}, geom.Point{X: 800, Y: 800},
				func(geom.Point) bool { n++; return true },
			)
			if err != nil {
				return check, err
			}
			if _, err := tr.Contains(extra[0]); err != nil {
				return check, err
			}
			return check, nil
		},
	})
}
