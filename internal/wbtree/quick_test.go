package wbtree

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"rangesearch/internal/eio"
	"rangesearch/internal/geom"
)

// Property: an arbitrary insert/delete sequence leaves the tree
// semantically equal to a set and structurally valid, and Range visits the
// live items in exactly sorted order.
func TestQuickSetSemantics(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 50,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			vals[0] = reflect.ValueOf(rng.Int63())
			vals[1] = reflect.ValueOf(100 + rng.Intn(500))
		},
	}
	err := quick.Check(func(seed int64, ops int) bool {
		rng := rand.New(rand.NewSource(seed))
		store := eio.NewMemStore(128)
		tr, err := Create(store, 2, 3)
		if err != nil {
			return false
		}
		model := map[geom.Point]bool{}
		for i := 0; i < ops; i++ {
			p := geom.Point{X: rng.Int63n(64), Y: rng.Int63n(64)}
			if rng.Intn(2) == 0 {
				err := tr.Insert(p)
				if model[p] != (err != nil) {
					return false
				}
				model[p] = true
			} else {
				found, err := tr.Delete(p)
				if err != nil || found != model[p] {
					return false
				}
				delete(model, p)
			}
		}
		if err := tr.CheckInvariants(false); err != nil {
			return false
		}
		var walked []geom.Point
		lo := geom.Point{X: geom.MinCoord, Y: geom.MinCoord}
		hi := geom.Point{X: geom.MaxCoord, Y: geom.MaxCoord}
		if err := tr.Range(lo, hi, func(p geom.Point) bool {
			walked = append(walked, p)
			return true
		}); err != nil {
			return false
		}
		if len(walked) != len(model) {
			return false
		}
		for i, p := range walked {
			if !model[p] {
				return false
			}
			if i > 0 && !walked[i-1].Less(p) {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// Property: BulkLoad(sorted distinct) produces a tree equal to the input
// under Range, for any size and parameters.
func TestQuickBulkLoad(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			n := rng.Intn(800)
			seen := map[geom.Point]bool{}
			pts := make([]geom.Point, 0, n)
			for len(pts) < n {
				p := geom.Point{X: rng.Int63n(5000), Y: rng.Int63n(5000)}
				if !seen[p] {
					seen[p] = true
					pts = append(pts, p)
				}
			}
			geom.SortByX(pts)
			vals[0] = reflect.ValueOf(pts)
			vals[1] = reflect.ValueOf(2 + rng.Intn(6))
			vals[2] = reflect.ValueOf(2 + rng.Intn(10))
		},
	}
	err := quick.Check(func(pts []geom.Point, a, k int) bool {
		store := eio.NewMemStore(256)
		tr, err := Create(store, a, k)
		if err != nil {
			return false
		}
		if err := tr.BulkLoad(pts); err != nil {
			return false
		}
		if err := tr.CheckInvariants(false); err != nil {
			return false
		}
		var walked []geom.Point
		lo := geom.Point{X: geom.MinCoord, Y: geom.MinCoord}
		hi := geom.Point{X: geom.MaxCoord, Y: geom.MaxCoord}
		if err := tr.Range(lo, hi, func(p geom.Point) bool {
			walked = append(walked, p)
			return true
		}); err != nil {
			return false
		}
		if len(walked) != len(pts) {
			return false
		}
		for i := range walked {
			if walked[i] != pts[i] {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}
