package wbtree

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"rangesearch/internal/eio"
	"rangesearch/internal/geom"
)

func distinctPoints(rng *rand.Rand, n int, coordRange int64) []geom.Point {
	seen := make(map[geom.Point]bool)
	var pts []geom.Point
	for len(pts) < n {
		p := geom.Point{X: rng.Int63n(coordRange), Y: rng.Int63n(coordRange)}
		if !seen[p] {
			seen[p] = true
			pts = append(pts, p)
		}
	}
	return pts
}

func TestInsertSearchSmall(t *testing.T) {
	store := eio.NewMemStore(128)
	tr, err := Create(store, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	pts := []geom.Point{{X: 3, Y: 1}, {X: 1, Y: 2}, {X: 7, Y: 0}, {X: 1, Y: 1}, {X: 5, Y: 9}}
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range pts {
		ok, err := tr.Contains(p)
		if err != nil || !ok {
			t.Fatalf("Contains(%v) = %v, %v", p, ok, err)
		}
	}
	ok, err := tr.Contains(geom.Point{X: 100, Y: 100})
	if err != nil || ok {
		t.Fatalf("Contains(absent) = %v, %v", ok, err)
	}
	if err := tr.Insert(pts[0]); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate insert: %v", err)
	}
	n, err := tr.Len()
	if err != nil || n != len(pts) {
		t.Fatalf("Len = %d, %v", n, err)
	}
	if err := tr.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}
}

func TestInsertManyInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, params := range [][2]int{{2, 2}, {3, 4}, {4, 8}} {
		store := eio.NewMemStore(256)
		tr, err := Create(store, params[0], params[1])
		if err != nil {
			t.Fatal(err)
		}
		pts := distinctPoints(rng, 3000, 1<<20)
		for i, p := range pts {
			if err := tr.Insert(p); err != nil {
				t.Fatalf("insert %d: %v", i, err)
			}
			if i%500 == 499 {
				if err := tr.CheckInvariants(true); err != nil {
					t.Fatalf("a=%d k=%d after %d inserts: %v", params[0], params[1], i+1, err)
				}
			}
		}
		if err := tr.CheckInvariants(true); err != nil {
			t.Fatal(err)
		}
		// Height must be logarithmic.
		h, err := tr.Height()
		if err != nil {
			t.Fatal(err)
		}
		bound := int(math.Log(float64(len(pts)))/math.Log(float64(params[0]))) + 3
		if h > bound {
			t.Errorf("a=%d k=%d: height %d exceeds %d", params[0], params[1], h, bound)
		}
	}
}

func TestRangeAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	store := eio.NewMemStore(128)
	tr, err := Create(store, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	pts := distinctPoints(rng, 800, 500)
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	sorted := append([]geom.Point(nil), pts...)
	geom.SortByX(sorted)
	for trial := 0; trial < 100; trial++ {
		lo := geom.Point{X: rng.Int63n(500), Y: rng.Int63n(500)}
		hi := geom.Point{X: rng.Int63n(500), Y: rng.Int63n(500)}
		if hi.Less(lo) {
			lo, hi = hi, lo
		}
		var got []geom.Point
		if err := tr.Range(lo, hi, func(p geom.Point) bool {
			got = append(got, p)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		var want []geom.Point
		for _, p := range sorted {
			if !p.Less(lo) && !hi.Less(p) {
				want = append(want, p)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("range [%v,%v]: got %d want %d", lo, hi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("range [%v,%v]: item %d: %v vs %v", lo, hi, i, got[i], want[i])
			}
		}
	}
	// Early stop.
	count := 0
	if err := tr.Range(geom.Point{X: geom.MinCoord, Y: geom.MinCoord}, geom.Point{X: geom.MaxCoord, Y: geom.MaxCoord}, func(geom.Point) bool {
		count++
		return count < 10
	}); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestDeleteAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	store := eio.NewMemStore(128)
	tr, err := Create(store, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	model := map[geom.Point]bool{}
	universe := distinctPoints(rng, 400, 300)
	for op := 0; op < 4000; op++ {
		p := universe[rng.Intn(len(universe))]
		if rng.Intn(2) == 0 {
			err := tr.Insert(p)
			if model[p] {
				if !errors.Is(err, ErrDuplicate) {
					t.Fatalf("op %d: expected duplicate, got %v", op, err)
				}
			} else if err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			model[p] = true
		} else {
			found, err := tr.Delete(p)
			if err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			if found != model[p] {
				t.Fatalf("op %d: delete %v found=%v want=%v", op, p, found, model[p])
			}
			delete(model, p)
		}
		if op%211 == 0 {
			n, err := tr.Len()
			if err != nil {
				t.Fatal(err)
			}
			if n != len(model) {
				t.Fatalf("op %d: len %d want %d", op, n, len(model))
			}
			if err := tr.CheckInvariants(false); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	// Everything still findable.
	for p := range model {
		ok, err := tr.Contains(p)
		if err != nil || !ok {
			t.Fatalf("lost %v", p)
		}
	}
}

func TestGlobalRebuildRestoresHeight(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	store := eio.NewMemStore(128)
	tr, err := Create(store, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	pts := distinctPoints(rng, 2000, 1<<20)
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	tall, err := tr.Height()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts[:1990] {
		if _, err := tr.Delete(p); err != nil {
			t.Fatal(err)
		}
	}
	short, err := tr.Height()
	if err != nil {
		t.Fatal(err)
	}
	if short >= tall {
		t.Errorf("height %d did not shrink from %d after mass deletion", short, tall)
	}
	n, err := tr.Len()
	if err != nil || n != 10 {
		t.Fatalf("Len = %d, %v", n, err)
	}
	for _, p := range pts[1990:] {
		ok, err := tr.Contains(p)
		if err != nil || !ok {
			t.Fatalf("lost %v across rebuild", p)
		}
	}
}

func TestBulkLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	store := eio.NewMemStore(256)
	tr, err := Create(store, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	pts := distinctPoints(rng, 5000, 1<<30)
	geom.SortByX(pts)
	if err := tr.BulkLoad(pts); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(false); err != nil {
		t.Fatal(err)
	}
	n, err := tr.Len()
	if err != nil || n != len(pts) {
		t.Fatalf("Len = %d, %v", n, err)
	}
	for _, i := range []int{0, 17, 4999} {
		ok, err := tr.Contains(pts[i])
		if err != nil || !ok {
			t.Fatalf("bulk-loaded item %d missing", i)
		}
	}
	// Unsorted input rejected.
	if err := tr.BulkLoad([]geom.Point{{X: 2, Y: 0}, {X: 1, Y: 0}}); err == nil {
		t.Fatal("unsorted bulk load accepted")
	}
	// Mutations after bulk load work.
	if err := tr.Insert(geom.Point{X: -1, Y: -1}); err != nil {
		t.Fatal(err)
	}
	if ok, err := tr.Contains(geom.Point{X: -1, Y: -1}); err != nil || !ok {
		t.Fatal("insert after bulk load lost")
	}
}

func TestMinMax(t *testing.T) {
	store := eio.NewMemStore(128)
	tr, err := Create(store, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := tr.Min(); err != nil || ok {
		t.Fatalf("Min on empty: ok=%v err=%v", ok, err)
	}
	if _, ok, err := tr.Max(); err != nil || ok {
		t.Fatalf("Max on empty: ok=%v err=%v", ok, err)
	}
	rng := rand.New(rand.NewSource(17))
	pts := distinctPoints(rng, 300, 1000)
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	sorted := append([]geom.Point(nil), pts...)
	geom.SortByX(sorted)
	mn, ok, err := tr.Min()
	if err != nil || !ok || mn != sorted[0] {
		t.Fatalf("Min = %v, want %v", mn, sorted[0])
	}
	mx, ok, err := tr.Max()
	if err != nil || !ok || mx != sorted[len(sorted)-1] {
		t.Fatalf("Max = %v, want %v", mx, sorted[len(sorted)-1])
	}
	// Delete the max; Max must follow.
	if _, err := tr.Delete(mx); err != nil {
		t.Fatal(err)
	}
	mx2, ok, err := tr.Max()
	if err != nil || !ok || mx2 != sorted[len(sorted)-2] {
		t.Fatalf("Max after delete = %v, want %v", mx2, sorted[len(sorted)-2])
	}
}

func TestOpenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	store := eio.NewMemStore(128)
	tr, err := Create(store, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	pts := distinctPoints(rng, 200, 1000)
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	tr2, err := Open(store, tr.HeaderID())
	if err != nil {
		t.Fatal(err)
	}
	a, k := tr2.Params()
	if a != 2 || k != 3 {
		t.Fatalf("params %d,%d", a, k)
	}
	for _, p := range pts {
		ok, err := tr2.Contains(p)
		if err != nil || !ok {
			t.Fatalf("reopened tree lost %v", p)
		}
	}
}

func TestDestroyFreesEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	store := eio.NewMemStore(128)
	tr, err := Create(store, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range distinctPoints(rng, 500, 1<<20) {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Destroy(); err != nil {
		t.Fatal(err)
	}
	if got := store.Pages(); got != 0 {
		t.Fatalf("%d pages leaked", got)
	}
}

// TestLemma3IOBound: search and insert cost O(log_a N) node records.
func TestLemma3IOBound(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	store := eio.NewMemStore(4096) // B = 256, defaults a=64, k=256
	tr, err := Create(store, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	pts := distinctPoints(rng, 30000, 1<<40)
	geom.SortByX(pts)
	if err := tr.BulkLoad(pts); err != nil {
		t.Fatal(err)
	}
	h, err := tr.Height()
	if err != nil {
		t.Fatal(err)
	}
	// Search cost: ≤ (height+1) node records + header, each O(1) pages.
	for i := 0; i < 50; i++ {
		p := pts[rng.Intn(len(pts))]
		store.ResetStats()
		if ok, err := tr.Contains(p); err != nil || !ok {
			t.Fatal(err)
		}
		reads := int(store.Stats().Reads)
		// Each node ≤ 3 pages (leaf ≤ 2k·16/4096+1), header 1.
		if limit := (h + 1) * 4 * 3; reads > limit {
			t.Errorf("search cost %d reads for height %d", reads, h)
		}
	}
	// Amortized insert cost stays small.
	store.ResetStats()
	extra := distinctPoints(rng, 2000, 1<<40)
	inserted := 0
	for _, p := range extra {
		err := tr.Insert(p)
		if errors.Is(err, ErrDuplicate) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		inserted++
	}
	perOp := float64(store.Stats().IOs()) / float64(inserted)
	if perOp > float64((h+2)*20) {
		t.Errorf("amortized insert cost %.1f I/Os at height %d", perOp, h)
	}
}

// TestLemma2SplitSpacing: after a node splits, many inserts must pass
// through it before it splits again — measured as: total splits over N
// inserts is O(N/k) at the leaf level and decreasing geometrically above.
func TestLemma2SplitSpacing(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	store := eio.NewMemStore(256)
	a, k := 4, 4
	tr, err := Create(store, a, k)
	if err != nil {
		t.Fatal(err)
	}
	n := 4000
	pts := distinctPoints(rng, n, 1<<30)
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	// The record count after N inserts reflects total splits: each split
	// creates one node. Nodes ≈ N/k leaves + N/(ak) level-1 + … ≤ 2N/k.
	if err := tr.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}
	h, err := tr.Height()
	if err != nil {
		t.Fatal(err)
	}
	if h < 2 {
		t.Fatalf("tree too shallow (h=%d) for the test to be meaningful", h)
	}
}

func TestSortSearchAssumption(t *testing.T) {
	// lowerBound agrees with sort.Search on random data.
	rng := rand.New(rand.NewSource(37))
	pts := distinctPoints(rng, 100, 50)
	geom.SortByX(pts)
	for i := 0; i < 200; i++ {
		p := geom.Point{X: rng.Int63n(50), Y: rng.Int63n(50)}
		want := sort.Search(len(pts), func(i int) bool { return !pts[i].Less(p) })
		if got := lowerBound(pts, p); got != want {
			t.Fatalf("lowerBound(%v) = %d, want %d", p, got, want)
		}
	}
}

// TestFileStoreRoundTrip persists a tree to a real file and reopens it.
func TestFileStoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	path := t.TempDir() + "/wbtree.db"
	fs, err := eio.CreateFileStore(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Create(fs, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	pts := distinctPoints(rng, 1000, 1<<20)
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	hdr := tr.HeaderID()
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, err := eio.OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	tr2, err := Open(fs2, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr2.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}
	for _, p := range pts[:50] {
		ok, err := tr2.Contains(p)
		if err != nil || !ok {
			t.Fatalf("lost %v across file reopen", p)
		}
	}
	// Mutate after reopen.
	if _, err := tr2.Delete(pts[0]); err != nil {
		t.Fatal(err)
	}
	if ok, err := tr2.Contains(pts[0]); err != nil || ok {
		t.Fatalf("delete after reopen failed: %v %v", ok, err)
	}
}
