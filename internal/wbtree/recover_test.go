package wbtree_test

import (
	"fmt"
	"strings"
	"testing"

	"rangesearch/internal/eio"
	"rangesearch/internal/eio/eiotest"
	"rangesearch/internal/geom"
	"rangesearch/internal/wbtree"
)

// sweepPoints is the deterministic pre-op content of the recovery sweeps.
func sweepPoints() []geom.Point {
	var pts []geom.Point
	for i := 0; i < 24; i++ {
		pts = append(pts, geom.Point{X: int64(i*37%101) + 1, Y: int64(i)})
	}
	return pts
}

func wbtreeState(st eio.Store, hdr eio.PageID) (string, error) {
	tr, err := wbtree.Open(st, hdr)
	if err != nil {
		return "", err
	}
	if err := tr.CheckInvariants(false); err != nil {
		return "", err
	}
	var b strings.Builder
	lo := geom.Point{X: geom.MinCoord, Y: geom.MinCoord}
	hi := geom.Point{X: geom.MaxCoord, Y: geom.MaxCoord}
	err = tr.Range(lo, hi, func(p geom.Point) bool {
		fmt.Fprintf(&b, "%d,%d;", p.X, p.Y)
		return true
	})
	return b.String(), err
}

func wbtreeReachable(st eio.Store, hdr eio.PageID) ([]eio.PageID, error) {
	tr, err := wbtree.Open(st, hdr)
	if err != nil {
		return nil, err
	}
	return tr.AppendAllPages(nil)
}

// TestRecoverySweep crashes an insert and a delete at every mutating
// backing-store operation and asserts before-or-after atomicity of the
// whole tree under WAL recovery plus a leak-free scrub.
func TestRecoverySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery sweep in -short mode")
	}
	build := func(st eio.Store) (eio.PageID, error) {
		tr, err := wbtree.Create(st, 0, 0)
		if err != nil {
			return eio.NilPage, err
		}
		for _, p := range sweepPoints() {
			if err := tr.Insert(p); err != nil {
				return eio.NilPage, err
			}
		}
		return tr.HeaderID(), nil
	}
	eiotest.RecoverySweep(t, eiotest.RecoveryWorkload{
		Name:     "wbtree-insert",
		PageSize: 128,
		WALPages: 256,
		Build:    build,
		Op: func(st eio.Store, hdr eio.PageID) error {
			tr, err := wbtree.Open(st, hdr)
			if err != nil {
				return err
			}
			return tr.Insert(geom.Point{X: 55, Y: 999})
		},
		State:     wbtreeState,
		Reachable: wbtreeReachable,
		MaxRuns:   50,
	})
	eiotest.RecoverySweep(t, eiotest.RecoveryWorkload{
		Name:     "wbtree-delete",
		PageSize: 128,
		WALPages: 256,
		Build:    build,
		Op: func(st eio.Store, hdr eio.PageID) error {
			tr, err := wbtree.Open(st, hdr)
			if err != nil {
				return err
			}
			found, err := tr.Delete(sweepPoints()[11])
			if err == nil && !found {
				return fmt.Errorf("delete target missing")
			}
			return err
		},
		State:     wbtreeState,
		Reachable: wbtreeReachable,
		MaxRuns:   50,
	})
}
