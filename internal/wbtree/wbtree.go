// Package wbtree implements the weight-balanced B-tree of Arge and Vitter,
// reviewed in Section 3.2 of Arge, Samoladas & Vitter (PODS 1999) and used
// there as the base-tree skeleton of the external priority search tree.
//
// The tree stores a set of points ordered by geom.Point.Less — callers that
// want a one-dimensional key set (e.g. a y-sorted list) store transposed
// points. Unlike an ordinary B-tree, rebalancing is driven by node
// *weights*: a leaf holds between k and 2k−1 items, and an internal node at
// level ℓ (except the root) has weight between a^ℓk/2 and 2a^ℓk, where a is
// the branching parameter. This yields the properties the paper's update
// analysis rests on (Lemma 2): after a node at level ℓ splits, Ω(a^ℓk)
// inserts must pass through it before it splits again.
//
// All nodes are serialized to eio pages through a record store: a search or
// insert touches O(log_a N) node records of O(1) pages each, i.e.
// O(log_B N) I/Os for a = Θ(B) (Lemma 3).
//
// Deletions follow the paper's prescription for the priority search tree:
// the item is removed from its leaf and weights are decremented, but no
// fusing is performed; instead the tree is rebuilt globally once the live
// size halves, giving O(log_B N) amortized deletes while search stays
// worst-case optimal.
package wbtree

import (
	"encoding/binary"
	"errors"
	"fmt"

	"rangesearch/internal/eio"
	"rangesearch/internal/geom"
)

// ErrDuplicate reports insertion of an item already present.
var ErrDuplicate = errors.New("wbtree: duplicate item")

// Tree is a handle to a weight-balanced B-tree stored on an eio.Store.
type Tree struct {
	store  eio.Store
	rs     *eio.RecordStore
	header eio.PageID
	a      int // branching parameter
	k      int // leaf parameter
}

// meta is the persistent header.
type meta struct {
	root   eio.PageID
	height int   // 0 = root is a leaf
	live   int64 // items currently stored
	basis  int64 // live size at last rebuild (global-rebuild trigger)
	a, k   int32
}

const metaSize = 8 + 4 + 8 + 8 + 4 + 4

// node is the decoded form of a tree node.
type node struct {
	level   int          // 0 for leaves
	entries []entry      // internal nodes
	items   []geom.Point // leaves, sorted by Less
}

type entry struct {
	maxKey geom.Point // largest item in the child's subtree
	child  eio.PageID
	weight int64
}

// DefaultParams returns the branching and leaf parameters used when zero
// values are passed to Create: a = max(2, B/4) and k = max(2, B), which
// keep every node within O(1) pages.
func DefaultParams(pageSize int) (a, k int) {
	b := eio.BlockCapacity(pageSize)
	a = b / 4
	if a < 2 {
		a = 2
	}
	k = b
	if k < 2 {
		k = 2
	}
	return a, k
}

// Create makes an empty tree on store. Zero a or k select DefaultParams.
func Create(store eio.Store, a, k int) (*Tree, error) {
	da, dk := DefaultParams(store.PageSize())
	if a == 0 {
		a = da
	}
	if k == 0 {
		k = dk
	}
	if a < 2 || k < 1 {
		return nil, fmt.Errorf("wbtree: invalid parameters a=%d k=%d", a, k)
	}
	t := &Tree{store: store, rs: eio.NewRecordStore(store), a: a, k: k}
	rootID, err := t.writeNode(eio.NilPage, &node{level: 0})
	if err != nil {
		return nil, err
	}
	m := &meta{root: rootID, a: int32(a), k: int32(k)}
	t.header, err = t.rs.Put(encodeMeta(m))
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Open attaches to a tree previously created on store.
func Open(store eio.Store, header eio.PageID) (*Tree, error) {
	t := &Tree{store: store, rs: eio.NewRecordStore(store), header: header}
	m, err := t.loadMeta()
	if err != nil {
		return nil, err
	}
	t.a, t.k = int(m.a), int(m.k)
	return t, nil
}

// HeaderID identifies the tree on its store; pass it to Open to re-attach.
func (t *Tree) HeaderID() eio.PageID { return t.header }

// Params returns the branching and leaf parameters.
func (t *Tree) Params() (a, k int) { return t.a, t.k }

func (t *Tree) loadMeta() (*meta, error) {
	raw, err := t.rs.Get(t.header)
	if err != nil {
		return nil, fmt.Errorf("wbtree: load header: %w", err)
	}
	return decodeMeta(raw)
}

func (t *Tree) storeMeta(m *meta) error {
	if err := t.rs.Update(t.header, encodeMeta(m)); err != nil {
		return fmt.Errorf("wbtree: store header: %w", err)
	}
	return nil
}

// Len returns the number of stored items.
func (t *Tree) Len() (int, error) {
	m, err := t.loadMeta()
	if err != nil {
		return 0, err
	}
	return int(m.live), nil
}

// Height returns the tree height (0 when the root is a leaf).
func (t *Tree) Height() (int, error) {
	m, err := t.loadMeta()
	if err != nil {
		return 0, err
	}
	return m.height, nil
}

// Contains reports whether p is stored.
func (t *Tree) Contains(p geom.Point) (bool, error) {
	m, err := t.loadMeta()
	if err != nil {
		return false, err
	}
	id := m.root
	for {
		n, err := t.readNode(id)
		if err != nil {
			return false, err
		}
		if n.level == 0 {
			for _, q := range n.items {
				if q == p {
					return true, nil
				}
			}
			return false, nil
		}
		id = n.entries[routeChild(n, p)].child
	}
}

// routeChild returns the index of the child whose subtree p belongs to:
// the first child with maxKey ≥ p, or the last child.
func routeChild(n *node, p geom.Point) int {
	for i := range n.entries {
		if !n.entries[i].maxKey.Less(p) {
			return i
		}
	}
	return len(n.entries) - 1
}

// Insert adds p, returning ErrDuplicate if already present.
func (t *Tree) Insert(p geom.Point) error {
	m, err := t.loadMeta()
	if err != nil {
		return err
	}

	// Descend to the leaf, recording the path.
	type pathEl struct {
		id  eio.PageID
		n   *node
		idx int // child index taken
	}
	var path []pathEl
	id := m.root
	for {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		if n.level == 0 {
			path = append(path, pathEl{id: id, n: n})
			break
		}
		idx := routeChild(n, p)
		path = append(path, pathEl{id: id, n: n, idx: idx})
		id = n.entries[idx].child
	}

	// Insert into the leaf in sorted position.
	leaf := path[len(path)-1].n
	pos := lowerBound(leaf.items, p)
	if pos < len(leaf.items) && leaf.items[pos] == p {
		return fmt.Errorf("wbtree: insert %v: %w", p, ErrDuplicate)
	}
	leaf.items = append(leaf.items, geom.Point{})
	copy(leaf.items[pos+1:], leaf.items[pos:])
	leaf.items[pos] = p

	// Walk back up: update weights and maxKeys, splitting as needed.
	// carry describes a child split performed one level below: the left
	// half's exact weight/maxKey and the new right sibling to add.
	type carryT struct {
		leftWeight  int64
		leftMax     geom.Point
		rightID     eio.PageID
		rightWeight int64
		rightMax    geom.Point
	}
	var carry *carryT
	for i := len(path) - 1; i >= 0; i-- {
		el := path[i]
		n := el.n
		if n.level > 0 {
			e := &n.entries[el.idx]
			if carry != nil {
				// Exact bookkeeping for the split child (its new weight
				// already includes the inserted item) plus the sibling.
				e.weight = carry.leftWeight
				e.maxKey = carry.leftMax
				n.entries = append(n.entries, entry{})
				copy(n.entries[el.idx+2:], n.entries[el.idx+1:])
				n.entries[el.idx+1] = entry{maxKey: carry.rightMax, child: carry.rightID, weight: carry.rightWeight}
				carry = nil
			} else {
				e.weight++
				if e.maxKey.Less(p) {
					e.maxKey = p
				}
			}
		}

		var right *node
		switch {
		case n.level == 0 && len(n.items) >= 2*t.k:
			right = &node{level: 0, items: append([]geom.Point(nil), n.items[t.k:]...)}
			n.items = n.items[:t.k]
		case n.level > 0 && nodeWeight(n) >= 2*t.levelCap(n.level):
			right = t.splitInternal(n)
		}

		if right == nil {
			if err := t.writeBack(el.id, n); err != nil {
				return err
			}
			continue
		}
		rightID, err := t.writeNode(eio.NilPage, right)
		if err != nil {
			return err
		}
		if err := t.writeBack(el.id, n); err != nil {
			return err
		}
		if i > 0 {
			carry = &carryT{
				leftWeight:  nodeWeight(n),
				leftMax:     nodeMaxKey(n),
				rightID:     rightID,
				rightWeight: nodeWeight(right),
				rightMax:    nodeMaxKey(right),
			}
			continue
		}
		// Root split: grow the tree.
		newRoot := &node{
			level: n.level + 1,
			entries: []entry{
				{maxKey: nodeMaxKey(n), child: el.id, weight: nodeWeight(n)},
				{maxKey: nodeMaxKey(right), child: rightID, weight: nodeWeight(right)},
			},
		}
		rootID, err := t.writeNode(eio.NilPage, newRoot)
		if err != nil {
			return err
		}
		m.root = rootID
		m.height = newRoot.level
	}

	m.live++
	if m.live > m.basis {
		m.basis = m.live
	}
	return t.storeMeta(m)
}

// levelCap returns a^ℓ·k, the weight unit for level ℓ, saturating to avoid
// overflow on deep trees.
func (t *Tree) levelCap(level int) int64 {
	cap := int64(t.k)
	for i := 0; i < level; i++ {
		if cap > (1<<62)/int64(t.a) {
			return 1 << 62
		}
		cap *= int64(t.a)
	}
	return cap
}

// splitInternal splits n by weight: the split point is the child boundary
// closest to half the node's weight. It returns the new right node; n keeps
// the left half.
func (t *Tree) splitInternal(n *node) *node {
	total := nodeWeight(n)
	half := total / 2
	acc := int64(0)
	cut := 1
	bestDiff := int64(1) << 62
	for i := 0; i < len(n.entries)-1; i++ {
		acc += n.entries[i].weight
		diff := acc - half
		if diff < 0 {
			diff = -diff
		}
		if diff < bestDiff {
			bestDiff = diff
			cut = i + 1
		}
	}
	right := &node{level: n.level, entries: append([]entry(nil), n.entries[cut:]...)}
	n.entries = n.entries[:cut]
	return right
}

func nodeWeight(n *node) int64 {
	if n.level == 0 {
		return int64(len(n.items))
	}
	var w int64
	for i := range n.entries {
		w += n.entries[i].weight
	}
	return w
}

func nodeMaxKey(n *node) geom.Point {
	if n.level == 0 {
		return n.items[len(n.items)-1]
	}
	return n.entries[len(n.entries)-1].maxKey
}

// Delete removes p, reporting whether it was present. The leaf shrinks in
// place; once the live size falls below half the rebuild basis, the whole
// tree is rebuilt (O(log_B N) amortized).
func (t *Tree) Delete(p geom.Point) (bool, error) {
	m, err := t.loadMeta()
	if err != nil {
		return false, err
	}
	type pathEl struct {
		id  eio.PageID
		n   *node
		idx int
	}
	var path []pathEl
	id := m.root
	for {
		n, err := t.readNode(id)
		if err != nil {
			return false, err
		}
		if n.level == 0 {
			path = append(path, pathEl{id: id, n: n})
			break
		}
		idx := routeChild(n, p)
		path = append(path, pathEl{id: id, n: n, idx: idx})
		id = n.entries[idx].child
	}
	leaf := path[len(path)-1].n
	pos := lowerBound(leaf.items, p)
	if pos >= len(leaf.items) || leaf.items[pos] != p {
		return false, nil
	}
	leaf.items = append(leaf.items[:pos], leaf.items[pos+1:]...)
	for i := len(path) - 1; i >= 0; i-- {
		el := path[i]
		if el.n.level > 0 {
			el.n.entries[el.idx].weight--
			// maxKey may now be stale (too large); routing stays correct
			// because maxKey only ever over-approximates the subtree.
		}
		if err := t.writeBack(el.id, el.n); err != nil {
			return false, err
		}
	}
	m.live--
	if m.live*2 < m.basis {
		if err := t.rebuild(m); err != nil {
			return false, err
		}
		return true, nil
	}
	return true, t.storeMeta(m)
}

// rebuild bulk-reconstructs the tree from its live items.
func (t *Tree) rebuild(m *meta) error {
	var items []geom.Point
	if err := t.scanSubtree(m.root, &items); err != nil {
		return err
	}
	// Shadow-paging order: build the replacement tree and commit the new
	// root before freeing the old one. A failure mid-build then leaves the
	// previous tree fully intact (the half-built pages leak, which is
	// recoverable), instead of a committed root pointing at freed pages.
	oldRoot := m.root
	rootID, height, err := t.bulkBuild(items)
	if err != nil {
		return err
	}
	m.root = rootID
	m.height = height
	m.live = int64(len(items))
	m.basis = m.live
	if err := t.storeMeta(m); err != nil {
		return err
	}
	return t.freeSubtree(oldRoot)
}

// BulkLoad replaces the tree contents with items (which must be sorted by
// Less and distinct). It is the fastest way to build a large tree.
func (t *Tree) BulkLoad(items []geom.Point) error {
	for i := 1; i < len(items); i++ {
		if !items[i-1].Less(items[i]) {
			return fmt.Errorf("wbtree: bulk load items not sorted/distinct at %d", i)
		}
	}
	m, err := t.loadMeta()
	if err != nil {
		return err
	}
	// Shadow-paging order (as in rebuild): build and commit the new tree
	// before freeing the old one, so a failure mid-build cannot leave the
	// committed root pointing at freed pages.
	oldRoot := m.root
	rootID, height, err := t.bulkBuild(items)
	if err != nil {
		return err
	}
	m.root = rootID
	m.height = height
	m.live = int64(len(items))
	m.basis = m.live
	if err := t.storeMeta(m); err != nil {
		return err
	}
	return t.freeSubtree(oldRoot)
}

// bulkBuild writes a tree over sorted items and returns its root and
// height. Leaves are evenly sized around 1.5k items; internal levels are
// packed by weight toward a^ℓ·k per node, leaving slack in both directions.
func (t *Tree) bulkBuild(items []geom.Point) (eio.PageID, int, error) {
	type built struct {
		id     eio.PageID
		maxKey geom.Point
		weight int64
	}
	if len(items) == 0 {
		id, err := t.writeNode(eio.NilPage, &node{level: 0})
		return id, 0, err
	}
	// Even leaf distribution: g leaves of size n/g ± 1, with g chosen so
	// every leaf is within [1, 2k−1] and near 1.5k when possible.
	g := (len(items) + (t.k + t.k/2) - 1) / (t.k + t.k/2)
	if g < 1 {
		g = 1
	}
	for len(items) > g*(2*t.k-1) {
		g++
	}
	var level []built
	for i := 0; i < g; i++ {
		lo := i * len(items) / g
		hi := (i + 1) * len(items) / g
		if lo == hi {
			continue
		}
		n := &node{level: 0, items: append([]geom.Point(nil), items[lo:hi]...)}
		id, err := t.writeNode(eio.NilPage, n)
		if err != nil {
			return eio.NilPage, 0, err
		}
		level = append(level, built{id: id, maxKey: n.items[len(n.items)-1], weight: int64(len(n.items))})
	}
	height := 0
	for len(level) > 1 {
		height++
		target := t.levelCap(height)
		var up []built
		cur := &node{level: height}
		var curW int64
		flush := func() error {
			if len(cur.entries) == 0 {
				return nil
			}
			id, err := t.writeNode(eio.NilPage, cur)
			if err != nil {
				return err
			}
			up = append(up, built{id: id, maxKey: nodeMaxKey(cur), weight: nodeWeight(cur)})
			cur = &node{level: height}
			curW = 0
			return nil
		}
		for _, c := range level {
			if curW+c.weight > target && len(cur.entries) > 0 {
				if err := flush(); err != nil {
					return eio.NilPage, 0, err
				}
			}
			cur.entries = append(cur.entries, entry{maxKey: c.maxKey, child: c.id, weight: c.weight})
			curW += c.weight
		}
		if err := flush(); err != nil {
			return eio.NilPage, 0, err
		}
		level = up
	}
	return level[0].id, height, nil
}

// Range calls fn for every stored item q with lo ≤ q ≤ hi (in Less order),
// stopping early if fn returns false.
func (t *Tree) Range(lo, hi geom.Point, fn func(geom.Point) bool) error {
	if hi.Less(lo) {
		return nil
	}
	m, err := t.loadMeta()
	if err != nil {
		return err
	}
	_, err = t.rangeRec(m.root, lo, hi, fn)
	return err
}

func (t *Tree) rangeRec(id eio.PageID, lo, hi geom.Point, fn func(geom.Point) bool) (bool, error) {
	n, err := t.readNode(id)
	if err != nil {
		return false, err
	}
	if n.level == 0 {
		for _, q := range n.items {
			if q.Less(lo) {
				continue
			}
			if hi.Less(q) {
				return false, nil
			}
			if !fn(q) {
				return false, nil
			}
		}
		return true, nil
	}
	for i := range n.entries {
		e := &n.entries[i]
		// maxKey over-approximates the subtree maximum (deletions leave it
		// stale high), so it may only be used to *skip* children below the
		// range — never to stop early. Termination beyond hi is driven by
		// the leaf scan returning false at the first item above hi.
		if e.maxKey.Less(lo) {
			continue
		}
		cont, err := t.rangeRec(e.child, lo, hi, fn)
		if err != nil {
			return false, err
		}
		if !cont {
			return false, nil
		}
	}
	return true, nil
}

// Min returns the smallest item; ok is false when empty.
func (t *Tree) Min() (geom.Point, bool, error) {
	var out geom.Point
	found := false
	err := t.Range(geom.Point{X: geom.MinCoord, Y: geom.MinCoord}, geom.Point{X: geom.MaxCoord, Y: geom.MaxCoord}, func(p geom.Point) bool {
		out = p
		found = true
		return false
	})
	return out, found, err
}

// Max returns the largest item; ok is false when empty.
func (t *Tree) Max() (geom.Point, bool, error) {
	m, err := t.loadMeta()
	if err != nil {
		return geom.Point{}, false, err
	}
	id := m.root
	for {
		n, err := t.readNode(id)
		if err != nil {
			return geom.Point{}, false, err
		}
		if n.level == 0 {
			if len(n.items) == 0 {
				return geom.Point{}, false, nil
			}
			return n.items[len(n.items)-1], true, nil
		}
		// Deleted maxima can leave trailing empty subtrees; walk from the
		// heaviest valid entry.
		idx := len(n.entries) - 1
		for idx > 0 && n.entries[idx].weight == 0 {
			idx--
		}
		id = n.entries[idx].child
	}
}

// scanSubtree appends every item under id to out, in order.
func (t *Tree) scanSubtree(id eio.PageID, out *[]geom.Point) error {
	n, err := t.readNode(id)
	if err != nil {
		return err
	}
	if n.level == 0 {
		*out = append(*out, n.items...)
		return nil
	}
	for i := range n.entries {
		if err := t.scanSubtree(n.entries[i].child, out); err != nil {
			return err
		}
	}
	return nil
}

// freeSubtree releases every record under and including id.
func (t *Tree) freeSubtree(id eio.PageID) error {
	n, err := t.readNode(id)
	if err != nil {
		return err
	}
	if n.level > 0 {
		for i := range n.entries {
			if err := t.freeSubtree(n.entries[i].child); err != nil {
				return err
			}
		}
	}
	return t.rs.Delete(id)
}

// Destroy frees the whole tree including its header.
func (t *Tree) Destroy() error {
	m, err := t.loadMeta()
	if err != nil {
		return err
	}
	if err := t.freeSubtree(m.root); err != nil {
		return err
	}
	return t.rs.Delete(t.header)
}

// CheckInvariants walks the tree verifying ordering, weights, and (for
// trees that have seen no deletions) the weight-balance constraints.
// strict enables the lower-bound weight checks.
func (t *Tree) CheckInvariants(strict bool) error {
	m, err := t.loadMeta()
	if err != nil {
		return err
	}
	var walk func(id eio.PageID, level int, isRoot bool) (int64, geom.Point, error)
	walk = func(id eio.PageID, level int, isRoot bool) (int64, geom.Point, error) {
		n, err := t.readNode(id)
		if err != nil {
			return 0, geom.Point{}, err
		}
		if n.level != level {
			return 0, geom.Point{}, fmt.Errorf("wbtree: node at level %d recorded as %d", level, n.level)
		}
		if n.level == 0 {
			for i := 1; i < len(n.items); i++ {
				if !n.items[i-1].Less(n.items[i]) {
					return 0, geom.Point{}, fmt.Errorf("wbtree: leaf items out of order")
				}
			}
			if len(n.items) > 2*t.k-1 {
				return 0, geom.Point{}, fmt.Errorf("wbtree: leaf has %d items (max %d)", len(n.items), 2*t.k-1)
			}
			if strict && !isRoot && len(n.items) < t.k {
				return 0, geom.Point{}, fmt.Errorf("wbtree: leaf has %d items (min %d)", len(n.items), t.k)
			}
			var mk geom.Point
			if len(n.items) > 0 {
				mk = n.items[len(n.items)-1]
			}
			return int64(len(n.items)), mk, nil
		}
		if len(n.entries) == 0 {
			return 0, geom.Point{}, fmt.Errorf("wbtree: internal node with no children")
		}
		var w int64
		var prevMax geom.Point
		for i := range n.entries {
			cw, cmk, err := walk(n.entries[i].child, level-1, false)
			if err != nil {
				return 0, geom.Point{}, err
			}
			if cw != n.entries[i].weight {
				return 0, geom.Point{}, fmt.Errorf("wbtree: entry weight %d, subtree weight %d", n.entries[i].weight, cw)
			}
			if cw > 0 {
				if cmk.Less(prevMax) && i > 0 {
					return 0, geom.Point{}, fmt.Errorf("wbtree: children out of order")
				}
				if n.entries[i].maxKey.Less(cmk) {
					return 0, geom.Point{}, fmt.Errorf("wbtree: maxKey %v under-approximates subtree max %v", n.entries[i].maxKey, cmk)
				}
				prevMax = cmk
			}
			w += cw
		}
		cap := t.levelCap(level)
		if w > 2*cap {
			return 0, geom.Point{}, fmt.Errorf("wbtree: level-%d node weight %d exceeds %d", level, w, 2*cap)
		}
		if strict && !isRoot && w < cap/4 {
			return 0, geom.Point{}, fmt.Errorf("wbtree: level-%d node weight %d below %d", level, w, cap/4)
		}
		return w, n.entries[len(n.entries)-1].maxKey, nil
	}
	w, _, err := walk(m.root, m.height, true)
	if err != nil {
		return err
	}
	if w != m.live {
		return fmt.Errorf("wbtree: live count %d, tree holds %d", m.live, w)
	}
	return nil
}

// lowerBound returns the first index i with items[i] ≥ p.
func lowerBound(items []geom.Point, p geom.Point) int {
	lo, hi := 0, len(items)
	for lo < hi {
		mid := (lo + hi) / 2
		if items[mid].Less(p) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// --- serialization ---

func (t *Tree) readNode(id eio.PageID) (*node, error) {
	raw, err := t.rs.Get(id)
	if err != nil {
		return nil, fmt.Errorf("wbtree: read node: %w", err)
	}
	return decodeNode(raw)
}

// writeNode stores n, allocating a record when id is NilPage; it returns
// the record id.
func (t *Tree) writeNode(id eio.PageID, n *node) (eio.PageID, error) {
	raw := encodeNode(n)
	if id == eio.NilPage {
		nid, err := t.rs.Put(raw)
		if err != nil {
			return eio.NilPage, fmt.Errorf("wbtree: write node: %w", err)
		}
		return nid, nil
	}
	if err := t.rs.Update(id, raw); err != nil {
		return eio.NilPage, fmt.Errorf("wbtree: update node: %w", err)
	}
	return id, nil
}

func (t *Tree) writeBack(id eio.PageID, n *node) error {
	_, err := t.writeNode(id, n)
	return err
}

const entrySize = 16 + 8 + 8

func encodeNode(n *node) []byte {
	if n.level == 0 {
		out := make([]byte, 8+eio.PointSize*len(n.items))
		binary.LittleEndian.PutUint32(out[0:], uint32(n.level))
		binary.LittleEndian.PutUint32(out[4:], uint32(len(n.items)))
		off := 8
		for _, p := range n.items {
			eio.PutPoint(out, off, p)
			off += eio.PointSize
		}
		return out
	}
	out := make([]byte, 8+entrySize*len(n.entries))
	binary.LittleEndian.PutUint32(out[0:], uint32(n.level))
	binary.LittleEndian.PutUint32(out[4:], uint32(len(n.entries)))
	off := 8
	for i := range n.entries {
		e := &n.entries[i]
		eio.PutPoint(out, off, e.maxKey)
		binary.LittleEndian.PutUint64(out[off+16:], uint64(e.child))
		binary.LittleEndian.PutUint64(out[off+24:], uint64(e.weight))
		off += entrySize
	}
	return out
}

func decodeNode(raw []byte) (*node, error) {
	if len(raw) < 8 {
		return nil, fmt.Errorf("wbtree: node record too short")
	}
	level := int(binary.LittleEndian.Uint32(raw[0:]))
	count := int(binary.LittleEndian.Uint32(raw[4:]))
	n := &node{level: level}
	off := 8
	if level == 0 {
		if len(raw) != 8+eio.PointSize*count {
			return nil, fmt.Errorf("wbtree: leaf record length %d for %d items", len(raw), count)
		}
		n.items = make([]geom.Point, count)
		for i := 0; i < count; i++ {
			n.items[i] = eio.GetPoint(raw, off)
			off += eio.PointSize
		}
		return n, nil
	}
	if len(raw) != 8+entrySize*count {
		return nil, fmt.Errorf("wbtree: node record length %d for %d entries", len(raw), count)
	}
	n.entries = make([]entry, count)
	for i := 0; i < count; i++ {
		n.entries[i] = entry{
			maxKey: eio.GetPoint(raw, off),
			child:  eio.PageID(binary.LittleEndian.Uint64(raw[off+16:])),
			weight: int64(binary.LittleEndian.Uint64(raw[off+24:])),
		}
		off += entrySize
	}
	return n, nil
}

func encodeMeta(m *meta) []byte {
	out := make([]byte, metaSize)
	binary.LittleEndian.PutUint64(out[0:], uint64(m.root))
	binary.LittleEndian.PutUint32(out[8:], uint32(m.height))
	binary.LittleEndian.PutUint64(out[12:], uint64(m.live))
	binary.LittleEndian.PutUint64(out[20:], uint64(m.basis))
	binary.LittleEndian.PutUint32(out[28:], uint32(m.a))
	binary.LittleEndian.PutUint32(out[32:], uint32(m.k))
	return out
}

func decodeMeta(raw []byte) (*meta, error) {
	if len(raw) != metaSize {
		return nil, fmt.Errorf("wbtree: header length %d", len(raw))
	}
	return &meta{
		root:   eio.PageID(binary.LittleEndian.Uint64(raw[0:])),
		height: int(binary.LittleEndian.Uint32(raw[8:])),
		live:   int64(binary.LittleEndian.Uint64(raw[12:])),
		basis:  int64(binary.LittleEndian.Uint64(raw[20:])),
		a:      int32(binary.LittleEndian.Uint32(raw[28:])),
		k:      int32(binary.LittleEndian.Uint32(raw[32:])),
	}, nil
}
