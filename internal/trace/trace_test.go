package trace

import (
	"encoding/json"
	"testing"
	"time"
)

func TestIDRoundTrip(t *testing.T) {
	id := NewID()
	if id.IsZero() {
		t.Fatal("NewID returned the zero ID")
	}
	s := id.String()
	if len(s) != 2*IDSize {
		t.Fatalf("String length = %d, want %d", len(s), 2*IDSize)
	}
	back, err := ParseID(s)
	if err != nil {
		t.Fatalf("ParseID(%q): %v", s, err)
	}
	if back != id {
		t.Fatalf("round trip changed the ID: %s != %s", back, id)
	}
	if _, err := ParseID("abc"); err == nil {
		t.Fatal("ParseID accepted a short string")
	}
	if _, err := ParseID("zz" + s[2:]); err == nil {
		t.Fatal("ParseID accepted non-hex digits")
	}
}

func TestIDsAreDistinct(t *testing.T) {
	seen := map[ID]bool{}
	for i := 0; i < 64; i++ {
		id := NewID()
		if seen[id] {
			t.Fatalf("duplicate ID %s after %d draws", id, i)
		}
		seen[id] = true
	}
}

func TestPhaseNames(t *testing.T) {
	for p := Phase(0); p < NumPhases; p++ {
		name := p.String()
		back, err := ParsePhase(name)
		if err != nil {
			t.Fatalf("ParsePhase(%q): %v", name, err)
		}
		if back != p {
			t.Fatalf("ParsePhase(%q) = %v, want %v", name, back, p)
		}
	}
	if _, err := ParsePhase("nope"); err == nil {
		t.Fatal("ParsePhase accepted an unknown name")
	}
}

func TestSpanAccumulation(t *testing.T) {
	sp := New(NewID(), "insert")
	sp.AddPhase(PhaseExecute, 3*time.Millisecond)
	sp.AddPhase(PhaseExecute, 2*time.Millisecond)
	sp.AddPhase(PhaseSync, 10*time.Millisecond)
	sp.AddPhase(PhaseSync, -time.Second) // clamped, not subtracted
	if got := sp.Phase(PhaseExecute); got != 5*time.Millisecond {
		t.Fatalf("execute = %v, want 5ms", got)
	}
	if got := sp.Phase(PhaseSync); got != 10*time.Millisecond {
		t.Fatalf("sync = %v, want 10ms", got)
	}
	if got := sp.PhaseTotal(); got != 15*time.Millisecond {
		t.Fatalf("total = %v, want 15ms", got)
	}

	sp.AddIO(3, 2, 1, 0)
	sp.AddIO(1, 0, 0, 4)
	if got := sp.IOs(); got != 6 {
		t.Fatalf("IOs = %d, want 6 (reads+writes)", got)
	}

	// Nil spans are inert on every mutator — the unsampled path relies
	// on it.
	var nilSpan *Span
	nilSpan.AddPhase(PhaseExecute, time.Second)
	nilSpan.AddIO(1, 1, 1, 1)
}

func TestSpanRecord(t *testing.T) {
	id := NewID()
	sp := New(id, "query3")
	sp.AddPhase(PhaseAdmission, time.Millisecond)
	sp.AddPhase(PhaseExecute, 2*time.Millisecond)
	sp.AddIO(7, 0, 0, 0)
	sp.Finish("ok")

	rec := sp.Record()
	if rec.TraceID != id.String() {
		t.Fatalf("TraceID = %s, want %s", rec.TraceID, id)
	}
	if rec.Op != "query3" || rec.Status != "ok" {
		t.Fatalf("op/status = %s/%s", rec.Op, rec.Status)
	}
	if rec.WallNs <= 0 {
		t.Fatalf("WallNs = %d, want > 0 after Finish", rec.WallNs)
	}
	if rec.Reads != 7 || rec.IOs != 7 {
		t.Fatalf("reads/ios = %d/%d, want 7/7", rec.Reads, rec.IOs)
	}
	// Zero phases are omitted; recorded ones carry their nanoseconds.
	if len(rec.Phases) != 2 {
		t.Fatalf("phases = %v, want exactly admission and execute", rec.Phases)
	}
	if rec.Phases["execute"] != int64(2*time.Millisecond) {
		t.Fatalf("execute = %d", rec.Phases["execute"])
	}

	// The record must survive its own JSONL round trip.
	raw, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var back Record
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.TraceID != rec.TraceID || back.Phases["execute"] != rec.Phases["execute"] {
		t.Fatalf("JSON round trip changed the record: %+v", back)
	}
}

func TestWallBeforeAndAfterFinish(t *testing.T) {
	sp := New(NewID(), "ping")
	if sp.Wall() < 0 {
		t.Fatal("unfinished Wall went negative")
	}
	sp.Finish("ok")
	w := sp.Wall()
	time.Sleep(2 * time.Millisecond)
	if sp.Wall() != w {
		t.Fatal("Wall kept moving after Finish")
	}
}
