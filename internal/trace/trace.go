// Package trace is the request-span vocabulary shared by the serving
// stack: a 16-byte trace ID that rides the wire protocol's TRACE
// envelope, a fixed set of phases a request passes through on its way
// from the client socket to the WAL and back, and a Span that
// accumulates per-phase wall time plus exact block-I/O counts.
//
// The package is a dependency leaf (standard library only) so every
// layer — internal/server at the top, internal/core in the middle,
// internal/eio at the bottom — can share one Span without creating an
// import cycle.
//
// Overhead contract: a Span is only allocated for sampled requests.
// All mutating methods are atomic adds, so the detached-execution path
// (a timed-out request whose handler is still running) may keep
// recording into a span the server already finished without a data
// race. Unsampled requests carry a nil *Span and every call site
// checks for nil before touching it — the unsampled hot path allocates
// nothing and reads no clocks beyond what it already did.
package trace

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
	"time"
)

// IDSize is the wire size of a trace ID in bytes.
const IDSize = 16

// ID identifies one request end to end. Clients that stamp their own
// TRACE envelopes choose random IDs; the server generates one for
// requests it samples itself.
type ID [IDSize]byte

// NewID returns a cryptographically random ID.
func NewID() ID {
	var id ID
	if _, err := rand.Read(id[:]); err != nil {
		// crypto/rand never fails on the supported platforms; if it
		// somehow does, a zero ID is still functional (just not unique).
		return ID{}
	}
	return id
}

// IsZero reports whether the ID is all zero bytes.
func (id ID) IsZero() bool { return id == ID{} }

// String renders the ID as 32 lowercase hex digits.
func (id ID) String() string { return hex.EncodeToString(id[:]) }

// ParseID inverts String.
func ParseID(s string) (ID, error) {
	var id ID
	if len(s) != 2*IDSize {
		return id, fmt.Errorf("trace: ID must be %d hex digits, got %d", 2*IDSize, len(s))
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return id, fmt.Errorf("trace: bad ID %q: %w", s, err)
	}
	copy(id[:], b)
	return id, nil
}

// Phase is one segment of a request's life. The phases are disjoint and
// in sum cover (nearly) the whole server-side wall time of a request:
//
//	admission    waiting for an in-flight slot at the admission gate
//	queue        sitting in the group-commit queue before a leader took it
//	leadership   waiting to acquire the single-writer leadership lock
//	execute      running the index operation itself (tree reads/writes)
//	wal_append   writing WAL record pages inside TxStore.Commit
//	sync         durability barriers (checkpoint, commit-point, apply)
//	commit       the rest of commit: in-place apply, anchor, epoch publish
//	reply_flush  encoding the response and flushing it to the socket
//	flush        draining a write buffer into the base structure (the
//	             bulk apply a buffered write triggered by crossing the
//	             size threshold; see internal/wbuf)
//
// Reads have only admission, execute and reply_flush; the group-commit
// phases stay zero. The flush phase is zero for every request except the
// unlucky buffered write that crossed the flush threshold and paid for
// the whole drain.
type Phase int

const (
	PhaseAdmission Phase = iota
	PhaseQueue
	PhaseLeadership
	PhaseExecute
	PhaseWALAppend
	PhaseSync
	PhaseCommit
	PhaseReplyFlush
	PhaseFlush

	// NumPhases is the number of defined phases; valid phases are
	// 0 <= p < NumPhases.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"admission",
	"queue",
	"leadership",
	"execute",
	"wal_append",
	"sync",
	"commit",
	"reply_flush",
	"flush",
}

// String returns the snake_case phase name used in JSON records,
// STATS payloads and Prometheus label values.
func (p Phase) String() string {
	if p < 0 || p >= NumPhases {
		return fmt.Sprintf("phase(%d)", int(p))
	}
	return phaseNames[p]
}

// ParsePhase inverts String.
func ParsePhase(s string) (Phase, error) {
	for p, name := range phaseNames {
		if name == s {
			return Phase(p), nil
		}
	}
	return 0, fmt.Errorf("trace: unknown phase %q", s)
}

// Span accumulates one sampled request's phase timings and block-I/O
// counts. All counters are atomic so recorders on other goroutines
// (group-commit leaders, detached executions) never race the owner.
type Span struct {
	id    ID
	op    string
	start time.Time

	phases [NumPhases]atomic.Int64 // nanoseconds per phase

	reads  atomic.Int64
	writes atomic.Int64
	allocs atomic.Int64
	frees  atomic.Int64

	wall   atomic.Int64 // set once by Finish
	status atomic.Pointer[string]
}

// New starts a span for one request. op is the wire opcode name
// ("insert", "query3", ...).
func New(id ID, op string) *Span {
	return &Span{id: id, op: op, start: time.Now()}
}

// NewAt starts a span whose clock began at start — the server uses it so
// a span's wall time covers the whole wire lifetime of a request (from
// the moment its frame was read) even though the TRACE envelope is only
// discovered after decoding.
func NewAt(id ID, op string, start time.Time) *Span {
	return &Span{id: id, op: op, start: start}
}

// ID returns the span's trace ID.
func (s *Span) ID() ID { return s.id }

// Op returns the operation name the span was started with.
func (s *Span) Op() string { return s.op }

// Start returns the span's start time.
func (s *Span) Start() time.Time { return s.start }

// AddPhase adds d to phase p. Negative durations are clamped to zero so
// clock oddities never produce negative phase sums.
func (s *Span) AddPhase(p Phase, d time.Duration) {
	if s == nil || p < 0 || p >= NumPhases {
		return
	}
	if d < 0 {
		d = 0
	}
	s.phases[p].Add(int64(d))
}

// Phase returns the accumulated time in phase p.
func (s *Span) Phase(p Phase) time.Duration {
	if p < 0 || p >= NumPhases {
		return 0
	}
	return time.Duration(s.phases[p].Load())
}

// PhaseTotal returns the sum over all phases.
func (s *Span) PhaseTotal() time.Duration {
	var total int64
	for i := range s.phases {
		total += s.phases[i].Load()
	}
	return time.Duration(total)
}

// AddIO adds block-I/O counts attributed to this request.
func (s *Span) AddIO(reads, writes, allocs, frees int64) {
	if s == nil {
		return
	}
	if reads != 0 {
		s.reads.Add(reads)
	}
	if writes != 0 {
		s.writes.Add(writes)
	}
	if allocs != 0 {
		s.allocs.Add(allocs)
	}
	if frees != 0 {
		s.frees.Add(frees)
	}
}

// IOs returns reads+writes — the paper's currency, matching
// eio.Stats.IOs (allocs and frees are bookkeeping, not block
// transfers).
func (s *Span) IOs() int64 { return s.reads.Load() + s.writes.Load() }

// Finish stamps the span's wall time (now − start) and final status.
// It may be called exactly once; recorders may keep adding phases and
// I/O afterwards (detached execution), which later Record calls will
// see.
func (s *Span) Finish(status string) {
	s.wall.Store(int64(time.Since(s.start)))
	s.status.Store(&status)
}

// Wall returns the finished wall time, or time-since-start when the
// span has not finished yet.
func (s *Span) Wall() time.Duration {
	if w := s.wall.Load(); w != 0 {
		return time.Duration(w)
	}
	return time.Since(s.start)
}

// Record is the JSONL schema of one finished span — one object per
// line in the sampled-span sink, replayed by `rsinspect spans`.
type Record struct {
	TraceID string           `json:"trace_id"`
	Op      string           `json:"op"`
	Start   time.Time        `json:"start"`
	WallNs  int64            `json:"wall_ns"`
	Status  string           `json:"status,omitempty"`
	Phases  map[string]int64 `json:"phases_ns"`
	Reads   int64            `json:"reads"`
	Writes  int64            `json:"writes"`
	Allocs  int64            `json:"allocs,omitempty"`
	Frees   int64            `json:"frees,omitempty"`
	IOs     int64            `json:"ios"`
}

// Record snapshots the span into its JSON-friendly form. Zero phases
// are omitted from the map to keep span lines compact.
func (s *Span) Record() Record {
	r := Record{
		TraceID: s.id.String(),
		Op:      s.op,
		Start:   s.start,
		WallNs:  s.wall.Load(),
		Phases:  make(map[string]int64, NumPhases),
		Reads:   s.reads.Load(),
		Writes:  s.writes.Load(),
		Allocs:  s.allocs.Load(),
		Frees:   s.frees.Load(),
	}
	r.IOs = r.Reads + r.Writes
	if st := s.status.Load(); st != nil {
		r.Status = *st
	}
	for i := range s.phases {
		if v := s.phases[i].Load(); v != 0 {
			r.Phases[Phase(i).String()] = v
		}
	}
	return r
}
