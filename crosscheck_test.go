package rangesearch

import (
	"math/rand"
	"testing"

	"rangesearch/internal/baseline"
	"rangesearch/internal/bench"
	"rangesearch/internal/core"
	"rangesearch/internal/eio"
	"rangesearch/internal/epst"
	"rangesearch/internal/geom"
	"rangesearch/internal/hier"
	"rangesearch/internal/range4"
)

// TestCrossCheckAllIndexes runs the same mutation workload against every
// dynamic index in the repository — the two paper structures and all four
// baselines — and demands identical answers to every query. Differential
// testing across six independent implementations is the strongest
// correctness evidence the repository has: a bug would have to be
// replicated in all of them to go unnoticed.
func TestCrossCheckAllIndexes(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	mk := map[string]func() (core.Index, error){
		"three-sided": func() (core.Index, error) {
			return core.NewThreeSided(eio.NewMemStore(256), epst.Options{})
		},
		"four-sided": func() (core.Index, error) {
			return core.NewFourSided(eio.NewMemStore(256), range4.Options{})
		},
		"scan":   func() (core.Index, error) { return baseline.NewScan(eio.NewMemStore(256)) },
		"xtree":  func() (core.Index, error) { return baseline.NewXTree(eio.NewMemStore(256)) },
		"kdtree": func() (core.Index, error) { return baseline.NewKDTree(eio.NewMemStore(256), 0) },
		"rtree":  func() (core.Index, error) { return baseline.NewRTree(eio.NewMemStore(256), 0) },
	}
	names := make([]string, 0, len(mk))
	idxs := make([]core.Index, 0, len(mk))
	for name, f := range mk {
		idx, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		names = append(names, name)
		idxs = append(idxs, idx)
	}

	universe := bench.Uniform(9, 800, 2000)
	live := map[geom.Point]bool{}
	for op := 0; op < 2500; op++ {
		p := universe[rng.Intn(len(universe))]
		if rng.Intn(3) != 0 {
			if !live[p] {
				for i, idx := range idxs {
					if err := idx.Insert(p); err != nil {
						t.Fatalf("op %d: %s insert: %v", op, names[i], err)
					}
				}
				live[p] = true
			}
		} else if live[p] {
			for i, idx := range idxs {
				found, err := idx.Delete(p)
				if err != nil || !found {
					t.Fatalf("op %d: %s delete: %v %v", op, names[i], found, err)
				}
			}
			delete(live, p)
		}
		if op%197 == 0 {
			a := rng.Int63n(2000)
			b := a + rng.Int63n(2000-a+1)
			c := rng.Int63n(2000)
			d := c + rng.Int63n(geom.MaxCoord-c) // sometimes open-topped-ish
			if rng.Intn(2) == 0 {
				d = c + rng.Int63n(2000-c+1)
			}
			q := geom.Rect{XLo: a, XHi: b, YLo: c, YHi: d}
			var ref []geom.Point
			for i, idx := range idxs {
				got, err := idx.Query(nil, q)
				if err != nil {
					t.Fatalf("op %d: %s query: %v", op, names[i], err)
				}
				geom.SortByX(got)
				if i == 0 {
					ref = got
					continue
				}
				if len(got) != len(ref) {
					t.Fatalf("op %d query %v: %s returned %d, %s returned %d",
						op, q, names[0], len(ref), names[i], len(got))
				}
				for j := range got {
					if got[j] != ref[j] {
						t.Fatalf("op %d query %v: %s and %s disagree at %d",
							op, q, names[0], names[i], j)
					}
				}
			}
		}
	}
}

// TestCrossCheckStaticSchemes cross-validates the Section 2 static
// indexing schemes against the dynamic structures on identical data.
func TestCrossCheckStaticSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	pts := bench.Uniform(10, 3000, 5000)

	hs, err := hier.Build(pts, 8, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := range4.Build(eio.NewMemStore(256), range4.Options{}, pts)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 120; trial++ {
		a := rng.Int63n(5000)
		b := a + rng.Int63n(5000-a+1)
		c := rng.Int63n(5000)
		d := c + rng.Int63n(5000-c+1)
		q := geom.Rect{XLo: a, XHi: b, YLo: c, YHi: d}
		g1, _ := hs.Query4(nil, q)
		g2, err := r4.Query4(nil, q)
		if err != nil {
			t.Fatal(err)
		}
		geom.SortByX(g1)
		geom.SortByX(g2)
		if len(g1) != len(g2) {
			t.Fatalf("query %v: hier %d vs range4 %d", q, len(g1), len(g2))
		}
		for i := range g1 {
			if g1[i] != g2[i] {
				t.Fatalf("query %v: mismatch at %d", q, i)
			}
		}
	}
}
