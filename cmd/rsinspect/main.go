// Command rsinspect opens a file-backed store created by this library,
// attaches to a structure by its header id, audits its structural
// invariants, and prints statistics. It demonstrates (and exercises) the
// persistence path: the same structures that run on the RAM simulator run
// against real files.
//
// Usage:
//
//	rsinspect -store points.db -kind epst   -hdr 12
//	rsinspect -store points.db -kind range4 -hdr 7
//	rsinspect -store points.db -kind wbtree -hdr 3
//	rsinspect verify -store points.db [-json]
//	rsinspect recover -store points.db -anchor 1
//	rsinspect scrub -store points.db -kind epst -hdr 12 [-anchor 1] [-dry] [-json]
//	rsinspect wal -store points.db [-anchor 1] [-json]
//	rsinspect trace -f trace.jsonl
//	rsinspect splitplan -store points.db -n 3
//
// The verify subcommand checks the file itself without attaching to any
// structure: superblock slots, per-page checksums and the free list. Its
// exit code gates recovery scripts: 0 clean, 2 damaged, 1 usage or I/O
// error. -json emits the machine-readable report instead of prose.
//
// The recover subcommand opens the store's transactional layer (created
// with eio.NewTxStore; -anchor is the id TxStore.Anchor returned) and runs
// WAL crash recovery: a committed-but-unapplied transaction is replayed,
// a torn one is discarded, and torn WAL/anchor pages are repaired.
//
// The scrub subcommand walks a structure's exact page reachability set and
// reclaims allocated-but-unreachable pages — the allocations a crash
// between page allocation and commit strands. With -anchor it runs WAL
// recovery first (scrubbing before recovery would reclaim pages a replay
// is about to use); -dry only reports.
//
// The wal subcommand decodes the transactional layer offline: both
// anchors, the redo record occupying the WAL region, and the record's
// commit state (applied / committed-unapplied / torn / empty). Without
// -anchor the directory id — plus the node's replication role and term —
// comes from the <store>.manifest.json rsserve maintains. Exit codes
// mirror verify: 0 healthy, 2 torn, 1 usage or I/O error.
//
// The trace subcommand replays a JSONL I/O trace written by an
// obs.JSONLSink and summarizes it: per-operation counts and latency
// quantiles, per-scope attribution, error counts and the hottest pages.
// With -v it also reprints every event.
//
// The splitplan subcommand reads a store's x-distribution and proposes
// shard boundaries splitting it into N balanced parts, emitted as the
// bounds-only -shards spec rsrouter consumes ("x<100,x<200,rest").
//
// The spans subcommand replays a request-span JSONL spool (rsserve
// -spans, or a dump of the /spans endpoint) and summarizes it: per-op
// wall-time and per-phase quantiles, I/O attribution, and the slowest
// spans in full. The prom subcommand fetches or reads a Prometheus
// text exposition (the /metrics endpoint) and validates it:
//
//	rsinspect spans -f spans.jsonl
//	rsinspect spans -url http://127.0.0.1:6060/spans
//	rsinspect prom -url http://127.0.0.1:6060/metrics [-o metrics.prom]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"rangesearch/internal/eio"
	"rangesearch/internal/epst"
	"rangesearch/internal/interval"
	"rangesearch/internal/obs"
	"rangesearch/internal/range4"
	"rangesearch/internal/smallstruct"
	"rangesearch/internal/wbtree"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "verify":
			verifyMain(os.Args[2:])
			return
		case "recover":
			recoverMain(os.Args[2:])
			return
		case "scrub":
			scrubMain(os.Args[2:])
			return
		case "wal":
			walMain(os.Args[2:])
			return
		case "trace":
			traceMain(os.Args[2:])
			return
		case "spans":
			spansMain(os.Args[2:])
			return
		case "prom":
			promMain(os.Args[2:])
			return
		case "splitplan":
			splitplanMain(os.Args[2:])
			return
		}
	}
	var (
		storePath = flag.String("store", "", "path to a file store created with eio.CreateFileStore")
		kind      = flag.String("kind", "epst", "structure kind: epst | range4 | wbtree")
		hdr       = flag.Uint64("hdr", 0, "header record id of the structure")
	)
	flag.Parse()
	if *storePath == "" || *hdr == 0 {
		flag.Usage()
		os.Exit(2)
	}

	store, err := eio.OpenFileStore(*storePath)
	if err != nil {
		fatal(err)
	}
	defer store.Close()
	fmt.Printf("store: %s  page size %d B  (block capacity %d points)  live pages %d\n",
		*storePath, store.PageSize(), eio.BlockCapacity(store.PageSize()), store.Pages())

	id := eio.PageID(*hdr)
	switch *kind {
	case "epst":
		t, err := epst.Open(store, id, 0)
		if err != nil {
			fatal(err)
		}
		n, err := t.Len()
		if err != nil {
			fatal(err)
		}
		h, err := t.Height()
		if err != nil {
			fatal(err)
		}
		a, k := t.Params()
		fmt.Printf("external priority search tree: N=%d height=%d a=%d k=%d B=%d\n", n, h, a, k, t.B())
		if err := t.CheckInvariants(); err != nil {
			fatal(fmt.Errorf("INVARIANT VIOLATION: %w", err))
		}
		fmt.Println("invariants: OK (Y-set sizes, topmost property, weights, key/point bijection)")
		prof, err := t.Profile()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-6s %-7s %-9s %-8s %-9s %-9s %-9s\n",
			"level", "nodes", "keys", "stored", "avgYfill", "Qblocks", "QcatPgs")
		for i := len(prof) - 1; i >= 0; i-- {
			lp := prof[i]
			fmt.Printf("%-6d %-7d %-9d %-8d %-9.2f %-9d %-9d\n",
				lp.Level, lp.Nodes, lp.Keys, lp.Stored, lp.AvgYFill, lp.QBlocks, lp.QCatPages)
		}
	case "range4":
		t, err := range4.Open(store, id)
		if err != nil {
			fatal(err)
		}
		st, err := t.Space()
		if err != nil {
			fatal(err)
		}
		rho, k := t.Params()
		fmt.Printf("4-sided structure: N=%d levels=%d rho=%d k=%d\n", st.Points, st.Levels, rho, k)
		if err := t.CheckInvariants(); err != nil {
			fatal(fmt.Errorf("INVARIANT VIOLATION: %w", err))
		}
		fmt.Println("invariants: OK (weights, per-level replica sets)")
	case "wbtree":
		t, err := wbtree.Open(store, id)
		if err != nil {
			fatal(err)
		}
		n, err := t.Len()
		if err != nil {
			fatal(err)
		}
		h, err := t.Height()
		if err != nil {
			fatal(err)
		}
		a, k := t.Params()
		fmt.Printf("weight-balanced B-tree: N=%d height=%d a=%d k=%d\n", n, h, a, k)
		if err := t.CheckInvariants(false); err != nil {
			fatal(fmt.Errorf("INVARIANT VIOLATION: %w", err))
		}
		fmt.Println("invariants: OK (ordering, weights, leaf caps)")
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}
}

// verifyMain implements `rsinspect verify -store FILE [-json]`: an offline
// scan of the store file for superblock, checksum and free-list damage.
// Exit codes: 0 clean, 2 damaged, 1 usage or I/O error — distinct codes so
// scripts can tell "the file is corrupt" from "I could not check".
func verifyMain(args []string) {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	storePath := fs.String("store", "", "path to a file store to verify")
	asJSON := fs.Bool("json", false, "emit the machine-readable report")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: rsinspect verify -store points.db [-json]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil || *storePath == "" {
		if err == nil {
			fs.Usage()
		}
		os.Exit(1)
	}
	rep, err := eio.VerifyFile(*storePath)
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		out := struct {
			*eio.VerifyReport
			Damaged bool `json:"damaged"`
		}{rep, rep.Damaged()}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		fmt.Print(rep)
	}
	if rep.Damaged() {
		if !*asJSON {
			fmt.Println("verdict: DAMAGED")
		}
		os.Exit(2)
	}
	if !*asJSON {
		fmt.Println("verdict: OK")
	}
}

// recoverMain implements `rsinspect recover -store FILE -anchor ID`: run
// WAL crash recovery on a transactional store and report what it did.
func recoverMain(args []string) {
	fs := flag.NewFlagSet("recover", flag.ContinueOnError)
	storePath := fs.String("store", "", "path to a file store with a transactional layer")
	anchor := fs.Uint64("anchor", 0, "transaction directory id (eio.TxStore.Anchor)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: rsinspect recover -store points.db -anchor 1")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil || *storePath == "" || *anchor == 0 {
		if err == nil {
			fs.Usage()
		}
		os.Exit(1)
	}
	store, err := eio.OpenFileStore(*storePath)
	if err != nil {
		fatal(err)
	}
	tx, err := eio.OpenTxStore(store, eio.PageID(*anchor))
	if err != nil {
		store.Close()
		fatal(fmt.Errorf("recovery failed: %w", err))
	}
	fmt.Printf("recovery: %s\n", tx.Recovery())
	if err := tx.Close(); err != nil {
		fatal(err)
	}
}

// scrubMain implements `rsinspect scrub`: reclaim allocated pages no
// structure can reach. With -anchor it runs WAL recovery first — scrubbing
// a store with a pending redo record would reclaim pages the replay needs.
func scrubMain(args []string) {
	fs := flag.NewFlagSet("scrub", flag.ContinueOnError)
	storePath := fs.String("store", "", "path to a file store")
	kind := fs.String("kind", "epst", "structure kind: epst | range4 | wbtree | interval | smallstruct")
	hdr := fs.Uint64("hdr", 0, "header record id of the structure")
	anchor := fs.Uint64("anchor", 0, "transaction directory id; 0 for a non-transactional store")
	dry := fs.Bool("dry", false, "report leaks without freeing them")
	asJSON := fs.Bool("json", false, "emit the machine-readable report")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: rsinspect scrub -store points.db -kind epst -hdr 12 [-anchor 1] [-dry] [-json]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil || *storePath == "" || *hdr == 0 {
		if err == nil {
			fs.Usage()
		}
		os.Exit(1)
	}
	store, err := eio.OpenFileStore(*storePath)
	if err != nil {
		fatal(err)
	}
	defer store.Close()
	var target eio.Store = store
	reachable := []eio.PageID{}
	if *anchor != 0 {
		tx, err := eio.OpenTxStore(store, eio.PageID(*anchor))
		if err != nil {
			fatal(fmt.Errorf("recovery before scrub failed: %w", err))
		}
		if r := tx.Recovery(); r.Dirty() {
			fmt.Fprintf(os.Stderr, "rsinspect: recovery: %s\n", r)
		}
		meta, err := tx.MetaPages()
		if err != nil {
			fatal(err)
		}
		reachable = append(reachable, meta...)
		target = tx
	}
	id := eio.PageID(*hdr)
	switch *kind {
	case "epst":
		t, err := epst.Open(target, id, 0)
		if err != nil {
			fatal(err)
		}
		reachable, err = t.AppendAllPages(reachable)
		if err != nil {
			fatal(err)
		}
	case "range4":
		t, err := range4.Open(target, id)
		if err != nil {
			fatal(err)
		}
		reachable, err = t.AppendAllPages(reachable)
		if err != nil {
			fatal(err)
		}
	case "wbtree":
		t, err := wbtree.Open(target, id)
		if err != nil {
			fatal(err)
		}
		reachable, err = t.AppendAllPages(reachable)
		if err != nil {
			fatal(err)
		}
	case "interval":
		s, err := interval.Open(target, id, 0)
		if err != nil {
			fatal(err)
		}
		reachable, err = s.AppendAllPages(reachable)
		if err != nil {
			fatal(err)
		}
	case "smallstruct":
		s, err := smallstruct.Open(target, id, 0)
		if err != nil {
			fatal(err)
		}
		reachable, err = s.AppendAllPages(reachable)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}
	var rep *eio.ScrubReport
	if *dry {
		rep, err = eio.FindLeaks(target, reachable)
	} else {
		rep, err = eio.Scrub(target, reachable)
	}
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else {
		fmt.Println(rep)
	}
}

// traceMain implements `rsinspect trace -f trace.jsonl`: stream the trace
// once, aggregating as it goes, so multi-gigabyte traces summarize in
// constant memory (modulo the page-heat map).
func traceMain(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	path := fs.String("f", "", "path to a JSONL trace written by an obs.JSONLSink")
	top := fs.Int("top", 10, "number of hottest pages to report")
	verbose := fs.Bool("v", false, "also reprint every event")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: rsinspect trace -f trace.jsonl [-top N] [-v]")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if *path == "" {
		fs.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	type opAgg struct {
		count uint64
		bytes uint64
		lat   obs.Histogram
	}
	var (
		ops      [4]opAgg
		total    uint64
		errs     uint64
		byScope  = map[string]uint64{}
		pageHeat = map[eio.PageID]uint64{}
	)
	err = obs.ScanTrace(f, func(e eio.TraceEvent) error {
		if *verbose {
			errMark := ""
			if e.Err {
				errMark = " [err]"
			}
			fmt.Printf("#%d %s p%d %dB %v %s%s\n", e.Seq, e.Op, e.Page, e.Bytes, e.Latency, e.Scope, errMark)
		}
		total++
		if int(e.Op) < len(ops) {
			a := &ops[e.Op]
			a.count++
			a.bytes += uint64(e.Bytes)
			lat := e.Latency
			if lat < 0 {
				lat = 0
			}
			a.lat.Observe(uint64(lat))
		}
		if e.Err {
			errs++
		}
		scope := e.Scope
		if scope == "" {
			scope = "(none)"
		}
		byScope[scope]++
		if e.Op == eio.OpRead || e.Op == eio.OpWrite {
			pageHeat[e.Page]++
		}
		return nil
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("trace: %s  events %d  errors %d\n", *path, total, errs)
	fmt.Printf("%-6s %-9s %-12s %-11s %-11s %-11s\n", "op", "count", "bytes", "lat p50", "lat p95", "lat max")
	for _, op := range []eio.Op{eio.OpRead, eio.OpWrite, eio.OpAlloc, eio.OpFree} {
		a := &ops[op]
		if a.count == 0 {
			continue
		}
		fmt.Printf("%-6s %-9d %-12d %-11d %-11d %-11d\n",
			op, a.count, a.bytes, a.lat.Quantile(0.50), a.lat.Quantile(0.95), a.lat.Max())
	}
	fmt.Println("per-scope events:")
	scopes := make([]string, 0, len(byScope))
	for s := range byScope {
		scopes = append(scopes, s)
	}
	sort.Strings(scopes)
	for _, s := range scopes {
		fmt.Printf("  %-10s %d\n", s, byScope[s])
	}
	if *top > 0 && len(pageHeat) > 0 {
		type heat struct {
			id eio.PageID
			n  uint64
		}
		hs := make([]heat, 0, len(pageHeat))
		for id, n := range pageHeat {
			hs = append(hs, heat{id, n})
		}
		sort.Slice(hs, func(i, j int) bool {
			if hs[i].n != hs[j].n {
				return hs[i].n > hs[j].n
			}
			return hs[i].id < hs[j].id
		})
		if len(hs) > *top {
			hs = hs[:*top]
		}
		fmt.Printf("hottest pages (of %d touched):\n", len(pageHeat))
		for _, h := range hs {
			fmt.Printf("  p%-8d %d I/Os\n", h.id, h.n)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rsinspect: %v\n", err)
	os.Exit(1)
}
