// Command rsinspect opens a file-backed store created by this library,
// attaches to a structure by its header id, audits its structural
// invariants, and prints statistics. It demonstrates (and exercises) the
// persistence path: the same structures that run on the RAM simulator run
// against real files.
//
// Usage:
//
//	rsinspect -store points.db -kind epst   -hdr 12
//	rsinspect -store points.db -kind range4 -hdr 7
//	rsinspect -store points.db -kind wbtree -hdr 3
//	rsinspect verify -store points.db
//
// The verify subcommand checks the file itself without attaching to any
// structure: superblock slots, per-page checksums and the free list. It
// exits non-zero if the file is damaged, so it can gate recovery scripts.
package main

import (
	"flag"
	"fmt"
	"os"

	"rangesearch/internal/eio"
	"rangesearch/internal/epst"
	"rangesearch/internal/range4"
	"rangesearch/internal/wbtree"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "verify" {
		verifyMain(os.Args[2:])
		return
	}
	var (
		storePath = flag.String("store", "", "path to a file store created with eio.CreateFileStore")
		kind      = flag.String("kind", "epst", "structure kind: epst | range4 | wbtree")
		hdr       = flag.Uint64("hdr", 0, "header record id of the structure")
	)
	flag.Parse()
	if *storePath == "" || *hdr == 0 {
		flag.Usage()
		os.Exit(2)
	}

	store, err := eio.OpenFileStore(*storePath)
	if err != nil {
		fatal(err)
	}
	defer store.Close()
	fmt.Printf("store: %s  page size %d B  (block capacity %d points)  live pages %d\n",
		*storePath, store.PageSize(), eio.BlockCapacity(store.PageSize()), store.Pages())

	id := eio.PageID(*hdr)
	switch *kind {
	case "epst":
		t, err := epst.Open(store, id, 0)
		if err != nil {
			fatal(err)
		}
		n, err := t.Len()
		if err != nil {
			fatal(err)
		}
		h, err := t.Height()
		if err != nil {
			fatal(err)
		}
		a, k := t.Params()
		fmt.Printf("external priority search tree: N=%d height=%d a=%d k=%d B=%d\n", n, h, a, k, t.B())
		if err := t.CheckInvariants(); err != nil {
			fatal(fmt.Errorf("INVARIANT VIOLATION: %w", err))
		}
		fmt.Println("invariants: OK (Y-set sizes, topmost property, weights, key/point bijection)")
		prof, err := t.Profile()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-6s %-7s %-9s %-8s %-9s %-9s %-9s\n",
			"level", "nodes", "keys", "stored", "avgYfill", "Qblocks", "QcatPgs")
		for i := len(prof) - 1; i >= 0; i-- {
			lp := prof[i]
			fmt.Printf("%-6d %-7d %-9d %-8d %-9.2f %-9d %-9d\n",
				lp.Level, lp.Nodes, lp.Keys, lp.Stored, lp.AvgYFill, lp.QBlocks, lp.QCatPages)
		}
	case "range4":
		t, err := range4.Open(store, id)
		if err != nil {
			fatal(err)
		}
		st, err := t.Space()
		if err != nil {
			fatal(err)
		}
		rho, k := t.Params()
		fmt.Printf("4-sided structure: N=%d levels=%d rho=%d k=%d\n", st.Points, st.Levels, rho, k)
		if err := t.CheckInvariants(); err != nil {
			fatal(fmt.Errorf("INVARIANT VIOLATION: %w", err))
		}
		fmt.Println("invariants: OK (weights, per-level replica sets)")
	case "wbtree":
		t, err := wbtree.Open(store, id)
		if err != nil {
			fatal(err)
		}
		n, err := t.Len()
		if err != nil {
			fatal(err)
		}
		h, err := t.Height()
		if err != nil {
			fatal(err)
		}
		a, k := t.Params()
		fmt.Printf("weight-balanced B-tree: N=%d height=%d a=%d k=%d\n", n, h, a, k)
		if err := t.CheckInvariants(false); err != nil {
			fatal(fmt.Errorf("INVARIANT VIOLATION: %w", err))
		}
		fmt.Println("invariants: OK (ordering, weights, leaf caps)")
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}
}

// verifyMain implements `rsinspect verify -store FILE`: an offline scan of
// the store file for superblock, checksum and free-list damage.
func verifyMain(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	storePath := fs.String("store", "", "path to a file store to verify")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: rsinspect verify -store points.db")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if *storePath == "" {
		fs.Usage()
		os.Exit(2)
	}
	rep, err := eio.VerifyFile(*storePath)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep)
	if rep.Damaged() {
		fmt.Println("verdict: DAMAGED")
		os.Exit(1)
	}
	fmt.Println("verdict: OK")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rsinspect: %v\n", err)
	os.Exit(1)
}
