package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"

	"rangesearch/internal/obs"
	"rangesearch/internal/trace"
)

// spansMain replays a span JSONL spool (rsserve -spans, or a /spans
// endpoint dump) and summarizes it: per-op counts, wall-time and
// per-phase quantiles, I/O attribution, and the slowest spans.
func spansMain(args []string) {
	fs := flag.NewFlagSet("spans", flag.ExitOnError)
	path := fs.String("f", "", "path to a span JSONL file ('-' = stdin)")
	url := fs.String("url", "", "fetch spans from a live /spans endpoint instead of a file")
	top := fs.Int("top", 5, "number of slowest spans to print in full")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: rsinspect spans (-f spans.jsonl | -url http://host:port/spans) [-top N]")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if (*path == "") == (*url == "") {
		fs.Usage()
		os.Exit(2)
	}

	var src io.ReadCloser
	switch {
	case *url != "":
		resp, err := http.Get(*url)
		if err != nil {
			fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			fatal(fmt.Errorf("GET %s: %s", *url, resp.Status))
		}
		src = resp.Body
	case *path == "-":
		src = os.Stdin
	default:
		f, err := os.Open(*path)
		if err != nil {
			fatal(err)
		}
		src = f
	}
	defer src.Close()

	type opAgg struct {
		count  uint64
		wall   obs.Histogram
		ios    obs.Histogram
		phases [trace.NumPhases]obs.Histogram
		errs   uint64
	}
	byOp := map[string]*opAgg{}
	var slowest []trace.Record
	var total uint64

	err := obs.ScanSpans(src, func(rec trace.Record) error {
		total++
		a := byOp[rec.Op]
		if a == nil {
			a = &opAgg{}
			byOp[rec.Op] = a
		}
		a.count++
		a.wall.Observe(uint64(rec.WallNs))
		a.ios.Observe(uint64(rec.IOs))
		for name, ns := range rec.Phases {
			if p, perr := trace.ParsePhase(name); perr == nil {
				a.phases[p].Observe(uint64(ns))
			}
		}
		if rec.Status != "" && rec.Status != "ok" {
			a.errs++
		}
		slowest = append(slowest, rec)
		sort.Slice(slowest, func(i, j int) bool { return slowest[i].WallNs > slowest[j].WallNs })
		if len(slowest) > *top {
			slowest = slowest[:*top]
		}
		return nil
	})
	if err != nil {
		fatal(err)
	}
	if total == 0 {
		fmt.Println("no spans")
		return
	}

	fmt.Printf("%d spans\n", total)
	opNames := make([]string, 0, len(byOp))
	for op := range byOp {
		opNames = append(opNames, op)
	}
	sort.Strings(opNames)
	for _, op := range opNames {
		a := byOp[op]
		fmt.Printf("\n%s: n=%d wall p50=%.3fms p99=%.3fms max=%.3fms  ios p50=%d max=%d",
			op, a.count,
			float64(a.wall.Quantile(0.50))/1e6,
			float64(a.wall.Quantile(0.99))/1e6,
			float64(a.wall.Max())/1e6,
			a.ios.Quantile(0.50), a.ios.Max())
		if a.errs > 0 {
			fmt.Printf("  non-ok=%d", a.errs)
		}
		fmt.Println()
		for p := trace.Phase(0); p < trace.NumPhases; p++ {
			h := &a.phases[p]
			if h.Count() == 0 {
				continue
			}
			fmt.Printf("  %-11s n=%-6d p50=%.3fms p99=%.3fms\n",
				p, h.Count(),
				float64(h.Quantile(0.50))/1e6,
				float64(h.Quantile(0.99))/1e6)
		}
	}

	if len(slowest) > 0 {
		fmt.Printf("\nslowest %d:\n", len(slowest))
		for _, rec := range slowest {
			var phases []string
			for p := trace.Phase(0); p < trace.NumPhases; p++ {
				if ns, ok := rec.Phases[p.String()]; ok {
					phases = append(phases, fmt.Sprintf("%s=%.3fms", p, float64(ns)/1e6))
				}
			}
			fmt.Printf("  %.3fms %-7s ios=%-4d trace=%s status=%s %s\n",
				float64(rec.WallNs)/1e6, rec.Op, rec.IOs,
				rec.TraceID, rec.Status, strings.Join(phases, " "))
		}
	}
}

// promMain fetches (or reads) a Prometheus text exposition and validates
// it with obs.CheckExposition — the same check the CI smoke job runs
// against a live /metrics scrape.
func promMain(args []string) {
	fs := flag.NewFlagSet("prom", flag.ExitOnError)
	path := fs.String("f", "", "path to an exposition file ('-' = stdin)")
	url := fs.String("url", "", "scrape a live /metrics endpoint instead of a file")
	out := fs.String("o", "", "also copy the exposition to this file")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: rsinspect prom (-f metrics.prom | -url http://host:port/metrics) [-o copy.prom]")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if (*path == "") == (*url == "") {
		fs.Usage()
		os.Exit(2)
	}

	var raw []byte
	var err error
	switch {
	case *url != "":
		resp, herr := http.Get(*url)
		if herr != nil {
			fatal(herr)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fatal(fmt.Errorf("GET %s: %s", *url, resp.Status))
		}
		raw, err = io.ReadAll(resp.Body)
	case *path == "-":
		raw, err = io.ReadAll(os.Stdin)
	default:
		raw, err = os.ReadFile(*path)
	}
	if err != nil {
		fatal(err)
	}

	samples, err := obs.CheckExposition(strings.NewReader(string(raw)))
	if err != nil {
		fmt.Fprintf(os.Stderr, "rsinspect: invalid exposition: %v\n", err)
		os.Exit(2)
	}
	if *out != "" {
		if werr := os.WriteFile(*out, raw, 0o644); werr != nil {
			fatal(werr)
		}
	}
	fmt.Printf("exposition ok: %d samples\n", samples)
}
