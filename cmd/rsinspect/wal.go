package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"rangesearch/internal/eio"
)

// walMain implements `rsinspect wal -store FILE [-anchor ID] [-json]`: an
// offline, read-only decode of a store's transactional layer — anchors,
// the current WAL record and its commit state — via eio.InspectTxLayer.
// Without -anchor the directory id is taken from the serving manifest
// (<store>.manifest.json) rsserve writes next to the store, which also
// contributes the node's replication role and term to the report. The
// exit code distinguishes damage from inability to check: 0 when the WAL
// region is healthy ("applied", "committed-unapplied" or "empty"), 2 on
// a torn or future record, 1 on usage or I/O errors.
func walMain(args []string) {
	fs := flag.NewFlagSet("wal", flag.ContinueOnError)
	storePath := fs.String("store", "", "path to a file store with a transactional layer")
	anchor := fs.Uint64("anchor", 0, "transaction directory id (0 = read it from the manifest)")
	asJSON := fs.Bool("json", false, "emit the machine-readable report")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: rsinspect wal -store points.db [-anchor 1] [-json]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil || *storePath == "" {
		if err == nil {
			fs.Usage()
		}
		os.Exit(1)
	}

	// The manifest is optional context: -anchor alone suffices, and a
	// replica's store is inspectable while its manifest names a term.
	var mf struct {
		Anchor uint64 `json:"anchor"`
		Term   uint64 `json:"term"`
		Role   string `json:"role"`
	}
	haveManifest := false
	if raw, err := os.ReadFile(*storePath + ".manifest.json"); err == nil {
		if err := json.Unmarshal(raw, &mf); err == nil {
			haveManifest = true
		}
	}
	dir := *anchor
	if dir == 0 {
		if !haveManifest || mf.Anchor == 0 {
			fatal(fmt.Errorf("no -anchor given and no usable manifest at %s.manifest.json", *storePath))
		}
		dir = mf.Anchor
	}

	store, err := eio.OpenFileStore(*storePath)
	if err != nil {
		fatal(err)
	}
	defer store.Close()
	info, err := eio.InspectTxLayer(store, eio.PageID(dir))
	if err != nil {
		fatal(err)
	}

	healthy := info.Record.State == "applied" ||
		info.Record.State == "committed-unapplied" ||
		info.Record.State == "empty"

	if *asJSON {
		out := struct {
			eio.TxLayerInfo
			Term    uint64 `json:"term,omitempty"`
			Role    string `json:"role,omitempty"`
			Healthy bool   `json:"healthy"`
		}{info, mf.Term, mf.Role, healthy}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		fmt.Printf("tx layer: dir p%d  wal pages %d (capacity %d images)  applied lsn %d\n",
			info.Dir, len(info.WALPages), info.Capacity, info.Applied)
		if haveManifest && (mf.Role != "" || mf.Term != 0) {
			fmt.Printf("manifest: role %s  term %d\n", mf.Role, mf.Term)
		}
		for i, a := range info.Anchors {
			if a.Valid {
				fmt.Printf("anchor %d: p%-8d seq %d  lsn %d\n", i, a.Page, a.Seq, a.LSN)
			} else {
				fmt.Printf("anchor %d: p%-8d INVALID (torn or never written)\n", i, a.Page)
			}
		}
		r := info.Record
		fmt.Printf("record: state %s  lsn %d  %d page images  %d bytes", r.State, r.LSN, r.Pages, r.Bytes)
		if r.TornPages > 0 {
			fmt.Printf("  TORN PAGES %d", r.TornPages)
		}
		fmt.Println()
		if len(r.PageIDs) > 0 {
			fmt.Printf("  targets:")
			for _, id := range r.PageIDs {
				fmt.Printf(" p%d", id)
			}
			fmt.Println()
		}
	}
	if !healthy {
		if !*asJSON {
			fmt.Println("verdict: DAMAGED")
		}
		os.Exit(2)
	}
	if !*asJSON {
		fmt.Println("verdict: OK")
	}
}
