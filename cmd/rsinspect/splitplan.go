package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"rangesearch/internal/core"
	"rangesearch/internal/eio"
	"rangesearch/internal/geom"
	"rangesearch/internal/router"
)

// splitplanMain implements `rsinspect splitplan -store FILE -n N`: read a
// store's x-distribution and propose shard boundaries that split it into N
// roughly equal parts. The output is a bounds-only -shards spec
// ("x<100,x<200,rest") ready to decorate with addresses and hand to
// rsrouter — the planning half of a resharding, done offline against a
// copy of the store rather than against the serving fleet.
//
// Boundaries are x-quantiles: shard i takes the points whose sorted-x rank
// falls in [i·len/N, (i+1)·len/N). Duplicate x-values cannot be split
// (routing is by x), so a heavily repeated x collapses adjacent
// boundaries and the plan may come back with fewer than N shards —
// reported, not an error.
func splitplanMain(args []string) {
	fs := flag.NewFlagSet("splitplan", flag.ContinueOnError)
	storePath := fs.String("store", "", "path to a file store")
	n := fs.Int("n", 3, "number of shards to plan for")
	kind := fs.String("kind", "epst", "structure kind: epst | range4")
	hdr := fs.Uint64("hdr", 0, "header record id (0 = read it from the manifest)")
	anchor := fs.Uint64("anchor", 0, "transaction directory id (0 = read it from the manifest; WAL recovery runs first)")
	asJSON := fs.Bool("json", false, "emit the machine-readable plan")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: rsinspect splitplan -store points.db -n 3 [-kind epst] [-hdr 12] [-anchor 1] [-json]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil || *storePath == "" {
		if err == nil {
			fs.Usage()
		}
		os.Exit(1)
	}
	if *n < 1 {
		fatal(fmt.Errorf("splitplan: -n %d: need at least one shard", *n))
	}

	// The serving manifest fills in what the flags leave at zero, exactly
	// as the wal subcommand does.
	var mf struct {
		Hdr     uint64 `json:"hdr"`
		Anchor  uint64 `json:"anchor"`
		Durable bool   `json:"durable"`
	}
	if raw, err := os.ReadFile(*storePath + ".manifest.json"); err == nil {
		_ = json.Unmarshal(raw, &mf)
	}
	id := *hdr
	if id == 0 {
		id = mf.Hdr
	}
	if id == 0 {
		fatal(fmt.Errorf("splitplan: no -hdr given and no usable manifest at %s.manifest.json", *storePath))
	}
	dir := *anchor
	if dir == 0 && mf.Durable {
		dir = mf.Anchor
	}

	store, err := eio.OpenFileStore(*storePath)
	if err != nil {
		fatal(err)
	}
	defer store.Close()
	var target eio.Store = store
	if dir != 0 {
		tx, err := eio.OpenTxStore(store, eio.PageID(dir))
		if err != nil {
			fatal(fmt.Errorf("recovery before splitplan failed: %w", err))
		}
		if r := tx.Recovery(); r.Dirty() {
			fmt.Fprintf(os.Stderr, "rsinspect: recovery: %s\n", r)
		}
		target = tx
	}

	var idx core.Index
	switch *kind {
	case "epst":
		idx, err = core.OpenThreeSided(target, eio.PageID(id))
	case "range4":
		idx, err = core.OpenFourSided(target, eio.PageID(id))
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}
	if err != nil {
		fatal(err)
	}

	// Stored coordinates never use the sentinels, so the full closed
	// rectangle reports every point.
	pts, err := idx.Query(nil, geom.Rect{
		XLo: geom.MinCoord, XHi: geom.MaxCoord,
		YLo: geom.MinCoord, YHi: geom.MaxCoord,
	})
	if err != nil {
		fatal(err)
	}
	if len(pts) == 0 {
		fatal(fmt.Errorf("splitplan: store holds no points — nothing to split"))
	}
	xs := make([]int64, len(pts))
	for i, p := range pts {
		xs[i] = p.X
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })

	// Quantile boundaries, deduplicated: "x<b" must be strictly above the
	// previous bound or the shard would be empty.
	var bounds []int64
	for i := 1; i < *n; i++ {
		b := xs[i*len(xs)/(*n)]
		if len(bounds) > 0 && b <= bounds[len(bounds)-1] {
			continue
		}
		if b == xs[0] {
			continue // an empty leading shard helps no one
		}
		bounds = append(bounds, b)
	}

	m := &router.Map{}
	lo := int64(geom.MinCoord)
	for _, b := range bounds {
		m.Shards = append(m.Shards, router.Shard{Lo: lo, Hi: b - 1})
		lo = b
	}
	m.Shards = append(m.Shards, router.Shard{Lo: lo, Hi: geom.MaxCoord})
	spec := m.Spec()
	if _, err := router.ParseBounds(spec); err != nil {
		fatal(fmt.Errorf("splitplan: internal error: proposed spec does not parse: %w", err))
	}

	type shardPlan struct {
		Bound  string `json:"bound"`
		Points int    `json:"points"`
	}
	plan := make([]shardPlan, len(m.Shards))
	for i, sh := range m.Shards {
		// Count stored x in [sh.Lo, sh.Hi] by rank.
		lo := sort.Search(len(xs), func(j int) bool { return xs[j] >= sh.Lo })
		hi := sort.Search(len(xs), func(j int) bool { return xs[j] > sh.Hi })
		bound := "rest"
		if sh.Hi != geom.MaxCoord {
			bound = fmt.Sprintf("x<%d", sh.Hi+1)
		}
		plan[i] = shardPlan{Bound: bound, Points: hi - lo}
	}

	if *asJSON {
		out := struct {
			Store     string      `json:"store"`
			Points    int         `json:"points"`
			Requested int         `json:"requested_shards"`
			Planned   int         `json:"planned_shards"`
			Spec      string      `json:"spec"`
			Shards    []shardPlan `json:"shards"`
		}{*storePath, len(xs), *n, len(m.Shards), spec, plan}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("splitplan: %s  %d points  %d shards requested\n", *storePath, len(xs), *n)
	if len(m.Shards) < *n {
		fmt.Printf("note: duplicate x-values collapse the split to %d shards\n", len(m.Shards))
	}
	for i, sp := range plan {
		fmt.Printf("  shard %d: %-22s %d points (%.1f%%)\n",
			i, sp.Bound, sp.Points, 100*float64(sp.Points)/float64(len(xs)))
	}
	fmt.Printf("spec: %s\n", spec)
}
