// Command rsrouter fronts an x-range-partitioned rsserve fleet with the
// same wire protocol the shards speak: clients point rsload (or any
// Client/ResilientClient) at the router and get the whole keyspace.
//
// The shard map is static, given as -shards:
//
//	rsrouter -addr :9040 -shards "x<1000@h1:9035,x<2000@h2:9035,rest@h3:9035"
//
// Each shard is "bound@primary|failover|failover..." — the bound ends the
// shard's x-range (exclusive), "rest" covers everything after the last
// bound, and the addresses after "|" are the shard's replicas, which the
// router rotates to on NOTPRIMARY (a promotion, e.g. rsserve SIGUSR1).
// `rsinspect splitplan` proposes bounds from an existing store's
// x-distribution.
//
// INSERT/DELETE route point-wise by x; BATCH splits deterministically
// into per-shard sub-batches; QUERY3/QUERY4 scatter-gather across exactly
// the shards their x-interval overlaps, merged into canonical order.
// IDEM envelopes forward unchanged (exactly-once per shard across client
// retries), BARRIER read consistency is preserved through a per-shard
// (term, LSN) vector (see internal/router), and TOPOLOGY serves the
// shard map. Per-shard latency/byte histograms and routing counters are
// served on -metrics.
//
// SIGTERM/SIGINT drains: in-flight requests finish, then the process
// exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rangesearch/internal/obs"
	"rangesearch/internal/router"
	"rangesearch/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:9040", "listen address")
		shards      = flag.String("shards", "", `shard map, e.g. "x<100@h1:9035,rest@h2:9035" (required)`)
		metricsAddr = flag.String("metrics", "", "serve expvar+pprof+/metrics on this address (empty = off)")
		idleT       = flag.Duration("idle-timeout", 5*time.Minute, "close inbound connections idle this long")
		writeT      = flag.Duration("write-timeout", 30*time.Second, "per-response write deadline")
		ioT         = flag.Duration("shard-io-timeout", 30*time.Second, "per-round-trip deadline on shard connections")
		dialT       = flag.Duration("shard-dial-timeout", 5*time.Second, "shard connection dial deadline")
		attempts    = flag.Int("shard-attempts", 10, "retry budget per shard sub-request (reconnects, BUSY, failover)")
		maxFrame    = flag.Int("max-frame", server.DefaultMaxFrame, "inbound frame size ceiling")
		maxBatch    = flag.Int("max-batch", server.DefaultMaxBatchOps, "max entries per inbound BATCH")
	)
	flag.Parse()
	if *shards == "" {
		fmt.Fprintln(os.Stderr, "rsrouter: -shards is required")
		flag.Usage()
		os.Exit(1)
	}
	m, err := router.ParseShards(*shards)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rsrouter: %v\n", err)
		os.Exit(1)
	}

	metrics := router.NewMetrics(len(m.Shards))
	router.PublishMetrics("main", metrics)
	if *metricsAddr != "" {
		ms, err := obs.ServeMetrics(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rsrouter: metrics: %v\n", err)
			os.Exit(1)
		}
		defer ms.Close()
		fmt.Printf("rsrouter: metrics on http://%s/debug/vars (Prometheus: /metrics)\n", ms.Addr())
	}

	rt, err := router.New(m, router.Options{
		Client:       server.ClientOptions{DialTimeout: *dialT, IOTimeout: *ioT},
		Retry:        server.RetryPolicy{MaxAttempts: *attempts},
		MaxFrame:     *maxFrame,
		MaxBatchOps:  *maxBatch,
		IdleTimeout:  *idleT,
		WriteTimeout: *writeT,
		Metrics:      metrics,
		Logf: func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rsrouter: %v\n", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rsrouter: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("rsrouter: listening on %s fronting %d shards (%s)\n", ln.Addr(), len(m.Shards), m.Spec())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	serveDone := make(chan error, 1)
	go func() { serveDone <- rt.Serve(ln) }()

	select {
	case sig := <-sigc:
		fmt.Printf("rsrouter: %v: draining\n", sig)
	case err := <-serveDone:
		fmt.Fprintf(os.Stderr, "rsrouter: serve: %v\n", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := rt.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "rsrouter: shutdown: %v\n", err)
	}
	<-serveDone

	snap := metrics.Snapshot()
	fmt.Printf("rsrouter: drained clean: %d conns accepted, %d ops (%d scatters, %d shard errors, %d proto errors)\n",
		snap.Accepted, snap.Ops, snap.Scatters, snap.ShardErrors, snap.ProtoErrors)
}
