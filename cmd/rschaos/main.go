// Command rschaos is the kill-and-recover chaos harness for the serving
// stack. It spawns a real rsserve process on a durable file store, fronts
// it with a fault-injecting netfault proxy, drives verified rsload
// traffic through the proxy, and SIGKILLs/restarts the server every
// -period for -cycles cycles. The run passes only if:
//
//   - the verified workload finishes with zero protocol, consistency,
//     and transport errors (acked writes survive every crash; retried
//     writes apply exactly once);
//   - the final SIGTERM drain exits 0 (rsserve's own leak check);
//   - an independent post-mortem reopen finds zero leaked pages and
//     clean checksums on the store file.
//
// The report is printed as JSON and optionally written to -json.
//
// With -router PATH and -shards N (N > 0) it instead runs the sharded
// fleet harness: N x-range-partitioned rsserve shards behind a real
// rsrouter process, verified load aimed at the router, one shard
// SIGKILLed and restarted per kill cycle. The pass criteria extend to:
// router and every shard drain clean, every shard store reopens
// leak-free, and the shard stores' point counts sum to the fleet total
// the router reported.
//
// With -replicas N (N > 0) it instead runs the replicated fleet harness:
// a primary plus N log-shipping replicas under verified load with
// replica read fan-out, where every cycle kills a replica, degrades the
// replication link, and SIGKILLs the primary followed by an explicit
// promotion. The pass criteria extend to: term == promotions, replicas
// converge within -staleness-max, and every node's store reopens clean
// with the same point count as the primary's.
//
// Usage:
//
//	rschaos -server ./rsserve -store /tmp/chaos.db -cycles 10
//	rschaos -server ./rsserve -dir /tmp/fleet -replicas 2 -cycles 5
//	rschaos -server ./rsserve -router ./rsrouter -dir /tmp/fleet -shards 3 -cycles 6
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"rangesearch/internal/server/chaos"
)

func main() {
	var (
		serverBin = flag.String("server", "", "path to an rsserve binary (required)")
		store     = flag.String("store", "", "durable store path (required; created fresh)")
		cycles    = flag.Int("cycles", 10, "SIGKILL/restart cycles")
		period    = flag.Duration("period", 700*time.Millisecond, "server lifetime between kills")
		workers   = flag.Int("workers", 4, "load worker connections")
		pipeline  = flag.Int("pipeline", 4, "requests in flight per connection")
		seed      = flag.Int64("seed", 1, "workload and fault RNG seed")
		latency   = flag.Duration("latency", 200*time.Microsecond, "proxy latency per chunk")
		jitter    = flag.Duration("jitter", 300*time.Microsecond, "proxy latency jitter")
		reqT      = flag.Duration("request-timeout", 5*time.Second, "rsserve per-request deadline")
		traceS    = flag.Float64("trace-sample", 0, "run with request tracing live at this sample rate (0 disables)")
		slowlog   = flag.Duration("slowlog", 0, "rsserve slow-query threshold (0 disables)")
		wbuf      = flag.Bool("write-buffer", false, "single-node mode: run rsserve write-optimized; kills must recover acked writes by journal replay")
		wbufOps   = flag.Int("write-buffer-ops", 0, "flush threshold for -write-buffer (0 = harness default)")
		jsonOut   = flag.String("json", "", "also write the report to this file")
		quiet     = flag.Bool("quiet", false, "suppress progress logging")

		readyT = flag.Duration("ready-timeout", 0, "max (re)start-to-Ping wait (0 = harness default)")
		drainT = flag.Duration("drain-timeout", 0, "max SIGTERM drain wait (0 = harness default)")
		graceT = flag.Duration("load-grace", 0, "max wait past nominal load duration (0 = harness default)")

		replicas = flag.Int("replicas", 0, "replicated mode: log-shipping replicas behind the primary (0 = single-node mode)")
		dir      = flag.String("dir", "", "replicated/sharded mode: fleet working directory (required; created fresh)")
		sync     = flag.Int("sync", 0, "replicated mode: -repl-sync acks per commit (0 = all replicas, <0 = async)")
		staleMax = flag.Duration("staleness-max", 0, "replicated mode: convergence budget after the run (0 = harness default)")

		routerBin = flag.String("router", "", "sharded mode: path to an rsrouter binary")
		shards    = flag.Int("shards", 0, "sharded mode: x-range-partitioned shards behind the router (0 = off)")
	)
	flag.Parse()
	if *serverBin == "" {
		fmt.Fprintln(os.Stderr, "rschaos: -server is required")
		flag.Usage()
		os.Exit(1)
	}

	logf := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}

	if *shards > 0 {
		if *routerBin == "" || *dir == "" {
			fmt.Fprintln(os.Stderr, "rschaos: -router and -dir are required with -shards")
			flag.Usage()
			os.Exit(1)
		}
		runSharded(chaos.ShardedConfig{
			ServerBin:      *serverBin,
			RouterBin:      *routerBin,
			Dir:            *dir,
			Shards:         *shards,
			Kills:          *cycles,
			Period:         *period,
			Workers:        *workers,
			Pipeline:       *pipeline,
			Seed:           *seed,
			RequestTimeout: *reqT,
			ReadyTimeout:   *readyT,
			DrainTimeout:   *drainT,
			LoadGrace:      *graceT,
			Logf:           logf,
		}, *jsonOut)
		return
	}
	if *replicas > 0 {
		if *dir == "" {
			fmt.Fprintln(os.Stderr, "rschaos: -dir is required with -replicas")
			flag.Usage()
			os.Exit(1)
		}
		runRepl(chaos.ReplConfig{
			ServerBin:      *serverBin,
			Dir:            *dir,
			Replicas:       *replicas,
			Cycles:         *cycles,
			Period:         *period,
			Workers:        *workers,
			Pipeline:       *pipeline,
			Seed:           *seed,
			Latency:        *latency,
			Jitter:         *jitter,
			SyncReplicas:   *sync,
			RequestTimeout: *reqT,
			ReadyTimeout:   *readyT,
			DrainTimeout:   *drainT,
			LoadGrace:      *graceT,
			StalenessMax:   *staleMax,
			Logf:           logf,
		}, *jsonOut)
		return
	}
	if *store == "" {
		fmt.Fprintln(os.Stderr, "rschaos: -store is required")
		flag.Usage()
		os.Exit(1)
	}

	rep, err := chaos.Run(chaos.Config{
		ServerBin:      *serverBin,
		StorePath:      *store,
		Cycles:         *cycles,
		Period:         *period,
		Workers:        *workers,
		Pipeline:       *pipeline,
		Seed:           *seed,
		Latency:        *latency,
		Jitter:         *jitter,
		RequestTimeout: *reqT,
		TraceSample:    *traceS,
		SlowLog:        *slowlog,
		WriteBuffer:    *wbuf,
		WriteBufferOps: *wbufOps,
		ReadyTimeout:   *readyT,
		DrainTimeout:   *drainT,
		LoadGrace:      *graceT,
		Logf:           logf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rschaos: %v\n", err)
		os.Exit(1)
	}

	emitReport(rep, *jsonOut)

	if rep.Failed() {
		fmt.Fprintf(os.Stderr, "rschaos: FAILED: drain_exit=%d leaked=%d proto=%d consistency=%d transport=%d first=%s\n",
			rep.FinalDrainExit, rep.PostLeaked,
			rep.Load.ProtoErrors, rep.Load.ConsistencyErrors, rep.Load.TransportErrors, rep.Load.FirstError)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "rschaos: ok: %d kills survived, %d ops (%d reconnects, %d resent, %d unknown), %d points intact, 0 leaks\n",
		rep.Kills, rep.Load.Ops, rep.Load.Reconnects, rep.Load.Resent, rep.Load.UnknownWrites, rep.PostPoints)
}

// emitReport prints the report JSON to stdout and optionally to a file.
func emitReport(rep interface{}, jsonOut string) {
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "rschaos: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(string(raw))
	if jsonOut != "" {
		if err := os.WriteFile(jsonOut, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "rschaos: write %s: %v\n", jsonOut, err)
			os.Exit(1)
		}
	}
}

// runSharded drives the sharded fleet harness and exits with the run's
// verdict.
func runSharded(cfg chaos.ShardedConfig, jsonOut string) {
	rep, err := chaos.RunSharded(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rschaos: %v\n", err)
		os.Exit(1)
	}

	emitReport(rep, jsonOut)

	if rep.Failed() {
		first := ""
		if rep.Load != nil {
			first = rep.Load.FirstError
		}
		fmt.Fprintf(os.Stderr, "rschaos: FAILED: failures=%v first=%s\n", rep.Failures, first)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "rschaos: ok: %d shard kills survived across %d shards, %d ops (%d resent, %d unknown), %d points across the fleet, 0 leaks\n",
		rep.Kills, rep.Shards, rep.Load.Ops, rep.Load.Resent, rep.Load.UnknownWrites, rep.RouterLen)
}

// runRepl drives the replicated fleet harness and exits with the run's
// verdict.
func runRepl(cfg chaos.ReplConfig, jsonOut string) {
	rep, err := chaos.RunRepl(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rschaos: %v\n", err)
		os.Exit(1)
	}

	emitReport(rep, jsonOut)

	if rep.Failed() {
		first := ""
		if rep.Load != nil {
			first = rep.Load.FirstError
		}
		fmt.Fprintf(os.Stderr, "rschaos: FAILED: failures=%v first=%s\n", rep.Failures, first)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "rschaos: ok: %d promotions (term %d), %d replica kills, %d link faults, %d ops (%d replica reads, %d stale fallbacks, %d failovers), converged in %.2fs, %d points on every node\n",
		rep.Promotions, rep.FinalTerm, rep.ReplicaKills, rep.LinkFaults,
		rep.Load.Ops, rep.Load.ReplicaReads, rep.Load.StaleFallbacks, rep.Load.Failovers,
		rep.ConvergeS, rep.PostPoints)
}
