// Command rschaos is the kill-and-recover chaos harness for the serving
// stack. It spawns a real rsserve process on a durable file store, fronts
// it with a fault-injecting netfault proxy, drives verified rsload
// traffic through the proxy, and SIGKILLs/restarts the server every
// -period for -cycles cycles. The run passes only if:
//
//   - the verified workload finishes with zero protocol, consistency,
//     and transport errors (acked writes survive every crash; retried
//     writes apply exactly once);
//   - the final SIGTERM drain exits 0 (rsserve's own leak check);
//   - an independent post-mortem reopen finds zero leaked pages and
//     clean checksums on the store file.
//
// The report is printed as JSON and optionally written to -json.
//
// Usage:
//
//	rschaos -server ./rsserve -store /tmp/chaos.db -cycles 10
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"rangesearch/internal/server/chaos"
)

func main() {
	var (
		serverBin = flag.String("server", "", "path to an rsserve binary (required)")
		store     = flag.String("store", "", "durable store path (required; created fresh)")
		cycles    = flag.Int("cycles", 10, "SIGKILL/restart cycles")
		period    = flag.Duration("period", 700*time.Millisecond, "server lifetime between kills")
		workers   = flag.Int("workers", 4, "load worker connections")
		pipeline  = flag.Int("pipeline", 4, "requests in flight per connection")
		seed      = flag.Int64("seed", 1, "workload and fault RNG seed")
		latency   = flag.Duration("latency", 200*time.Microsecond, "proxy latency per chunk")
		jitter    = flag.Duration("jitter", 300*time.Microsecond, "proxy latency jitter")
		reqT      = flag.Duration("request-timeout", 5*time.Second, "rsserve per-request deadline")
		traceS    = flag.Float64("trace-sample", 0, "run with request tracing live at this sample rate (0 disables)")
		slowlog   = flag.Duration("slowlog", 0, "rsserve slow-query threshold (0 disables)")
		jsonOut   = flag.String("json", "", "also write the report to this file")
		quiet     = flag.Bool("quiet", false, "suppress progress logging")
	)
	flag.Parse()
	if *serverBin == "" || *store == "" {
		fmt.Fprintln(os.Stderr, "rschaos: -server and -store are required")
		flag.Usage()
		os.Exit(1)
	}

	logf := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}

	rep, err := chaos.Run(chaos.Config{
		ServerBin:      *serverBin,
		StorePath:      *store,
		Cycles:         *cycles,
		Period:         *period,
		Workers:        *workers,
		Pipeline:       *pipeline,
		Seed:           *seed,
		Latency:        *latency,
		Jitter:         *jitter,
		RequestTimeout: *reqT,
		TraceSample:    *traceS,
		SlowLog:        *slowlog,
		Logf:           logf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rschaos: %v\n", err)
		os.Exit(1)
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "rschaos: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(string(raw))
	if *jsonOut != "" {
		if err := os.WriteFile(*jsonOut, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "rschaos: write %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
	}

	if rep.Failed() {
		fmt.Fprintf(os.Stderr, "rschaos: FAILED: drain_exit=%d leaked=%d proto=%d consistency=%d transport=%d first=%s\n",
			rep.FinalDrainExit, rep.PostLeaked,
			rep.Load.ProtoErrors, rep.Load.ConsistencyErrors, rep.Load.TransportErrors, rep.Load.FirstError)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "rschaos: ok: %d kills survived, %d ops (%d reconnects, %d resent, %d unknown), %d points intact, 0 leaks\n",
		rep.Kills, rep.Load.Ops, rep.Load.Reconnects, rep.Load.Resent, rep.Load.UnknownWrites, rep.PostPoints)
}
