// Command rsload is a closed-loop load generator for rsserve: N worker
// connections, each keeping a fixed pipeline of requests in flight, drawing
// operations from a configurable read/write mix over a coordinate domain.
// Every worker owns a disjoint x-stripe of the key space and (with -verify)
// checks every query result against its own model of that stripe, so a run
// doubles as an end-to-end consistency check: zero protocol errors and zero
// consistency errors or the process exits nonzero.
//
// The report — throughput plus p50/p99/p999 latency per operation — is
// printed as JSON and optionally written to a file (-json) in the same
// shape internal/bench snapshots use, so trajectory tooling can ingest it.
//
// Usage:
//
//	rsload -addr 127.0.0.1:9035 -workers 8 -duration 10s -verify
//	rsload -addr 127.0.0.1:9035 -read-frac 0.9 -pipeline 16 -json load.json
//	rsload -addr 127.0.0.1:9035 -resilient -verify \
//	    -read-addrs 127.0.0.1:9036,127.0.0.1:9037 \
//	    -failover-addrs 127.0.0.1:9036,127.0.0.1:9037
//	rsload -addr 127.0.0.1:9040 -cluster -verify
//
// With -cluster the target must be an rsrouter: the run first fetches the
// TOPOLOGY frame, records the shard map in the report, and then verifies
// the same way — the router speaks the same protocol, so a zero-error
// -cluster run proves the sharded fleet is indistinguishable from one
// server.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rangesearch/internal/router"
	"rangesearch/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:9035", "rsserve address")
		workers    = flag.Int("workers", 4, "concurrent connections")
		duration   = flag.Duration("duration", 5*time.Second, "run length")
		pipeline   = flag.Int("pipeline", 8, "requests in flight per connection")
		readFrac   = flag.Float64("read-frac", 0.5, "fraction of ops that are queries (negative = none)")
		deleteFrac = flag.Float64("delete-frac", 0.3, "fraction of writes that are deletes (negative = none)")
		fourFrac   = flag.Float64("four-frac", 0.5, "fraction of queries that are 4-sided (negative = none)")
		domain     = flag.Int64("domain", 1<<20, "coordinate domain [0, domain)")
		distName   = flag.String("dist", "uniform", "write-key distribution: uniform, zipf (skew via -theta), hotspot (90/10)")
		theta      = flag.Float64("theta", 0.99, "zipfian skew for -dist zipf, in (0, 1)")
		batchEvery = flag.Int("batch-every", 0, "make every Nth write a BATCH (0 = never)")
		batchSize  = flag.Int("batch-size", 16, "operations per BATCH request")
		seed       = flag.Int64("seed", 1, "workload RNG seed")
		verify     = flag.Bool("verify", false, "check query results against a per-stripe model")
		jsonOut    = flag.String("json", "", "also write the report to this file")

		traceSample = flag.Float64("trace-sample", 0, "stamp this fraction of requests with a TRACE envelope (server records full spans for them)")

		resilient = flag.Bool("resilient", false, "survive resets/restarts: reconnect with backoff, idempotent write retries")
		attempts  = flag.Int("retry-attempts", 0, "resilient: max tries per op and per reconnect (0 = default 10)")
		baseDelay = flag.Duration("retry-base", 0, "resilient: first backoff delay (0 = default 10ms)")
		maxDelay  = flag.Duration("retry-max", 0, "resilient: backoff cap (0 = default 1s)")

		readAddrs     = flag.String("read-addrs", "", "resilient: comma-separated replica addresses for barrier-stamped read fan-out")
		failoverAddrs = flag.String("failover-addrs", "", "resilient: comma-separated additional primary candidates for write failover")

		cluster = flag.Bool("cluster", false, "require -addr to be an rsrouter: fetch its TOPOLOGY and record the shard map in the report")
	)
	flag.Parse()

	splitAddrs := func(s string) []string {
		if s == "" {
			return nil
		}
		var out []string
		for _, a := range strings.Split(s, ",") {
			if a = strings.TrimSpace(a); a != "" {
				out = append(out, a)
			}
		}
		return out
	}
	if (*readAddrs != "" || *failoverAddrs != "") && !*resilient {
		fmt.Fprintln(os.Stderr, "rsload: -read-addrs and -failover-addrs require -resilient")
		os.Exit(1)
	}

	var clusterInfo *server.ClusterLoadInfo
	if *cluster {
		m, err := fetchTopology(*addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rsload: -cluster: %v (is %s an rsrouter?)\n", err, *addr)
			os.Exit(1)
		}
		clusterInfo = &server.ClusterLoadInfo{Shards: len(m.Shards), Spec: m.Spec()}
		fmt.Fprintf(os.Stderr, "rsload: cluster: %d shards (%s)\n", clusterInfo.Shards, clusterInfo.Spec)
	}

	rep, err := server.RunLoad(server.LoadConfig{
		Addr:          *addr,
		Workers:       *workers,
		Duration:      *duration,
		Pipeline:      *pipeline,
		ReadFrac:      *readFrac,
		DeleteFrac:    *deleteFrac,
		FourFrac:      *fourFrac,
		Domain:        *domain,
		Dist:          *distName,
		Theta:         *theta,
		BatchEvery:    *batchEvery,
		BatchSize:     *batchSize,
		Seed:          *seed,
		Verify:        *verify,
		TraceSample:   *traceSample,
		Resilient:     *resilient,
		ReadAddrs:     splitAddrs(*readAddrs),
		FailoverAddrs: splitAddrs(*failoverAddrs),
		Retry: server.RetryPolicy{
			MaxAttempts: *attempts,
			BaseDelay:   *baseDelay,
			MaxDelay:    *maxDelay,
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rsload: %v\n", err)
		os.Exit(1)
	}
	rep.Cluster = clusterInfo

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "rsload: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(string(raw))
	if *jsonOut != "" {
		if err := os.WriteFile(*jsonOut, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "rsload: write %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
	}

	if rep.Failed() {
		fmt.Fprintf(os.Stderr, "rsload: FAILED: proto=%d consistency=%d transport=%d first=%s\n",
			rep.ProtoErrors, rep.ConsistencyErrors, rep.TransportErrors, rep.FirstError)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "rsload: ok: %d ops in %.1fs (%.0f ops/s), busy=%d\n",
		rep.Ops, rep.DurationS, rep.OpsPerSec, rep.Busy)
	if *resilient {
		fmt.Fprintf(os.Stderr, "rsload: resilience: reconnects=%d resent=%d busy_retries=%d timeout_retries=%d unknown_writes=%d\n",
			rep.Reconnects, rep.Resent, rep.BusyRetries, rep.TimeoutRetries, rep.UnknownWrites)
		if *readAddrs != "" || *failoverAddrs != "" {
			fmt.Fprintf(os.Stderr, "rsload: fleet: replica_reads=%d stale_fallbacks=%d replica_fallbacks=%d failovers=%d\n",
				rep.ReplicaReads, rep.StaleFallbacks, rep.ReplicaFallbacks, rep.Failovers)
		}
	}
	if c := rep.Cluster; c != nil {
		fmt.Fprintf(os.Stderr, "rsload: cluster: verified through %d shards (%s)\n", c.Shards, c.Spec)
	}
	if st := rep.ServerStats; st != nil {
		fmt.Fprintf(os.Stderr, "rsload: server: uptime=%.1fs epoch=%d len=%d in_flight=%d idem_clients=%d\n",
			st.UptimeS, st.Epoch, st.Len, st.InFlight, st.IdemClients)
	}
	if t := rep.Trace; t != nil {
		fmt.Fprintf(os.Stderr, "rsload: traced %d requests: client p50=%.3fms p99=%.3fms mean=%.3fms\n",
			rep.TracedOps, t.ClientP50Ms, t.ClientP99Ms, t.ClientMeanMs)
		for _, phase := range []string{
			"admission", "queue", "leadership", "execute",
			"wal_append", "sync", "commit", "reply_flush",
		} {
			if ps, ok := t.ServerPhases[phase]; ok {
				fmt.Fprintf(os.Stderr, "rsload:   server %-11s p50=%.3fms p99=%.3fms (n=%d)\n",
					phase, float64(ps.P50Ns)/1e6, float64(ps.P99Ns)/1e6, ps.Count)
			}
		}
	}
}

// fetchTopology asks the target for its shard map via the TOPOLOGY frame.
func fetchTopology(addr string) (*router.Map, error) {
	cl, err := server.Dial(addr, server.ClientOptions{})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	raw, err := cl.Topology()
	if err != nil {
		return nil, err
	}
	return router.DecodeTopology(raw)
}
