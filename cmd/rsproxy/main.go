// rsproxy is a standalone fault-injecting TCP proxy for chaos-testing an
// rsserve deployment from the command line:
//
//	rsproxy -listen 127.0.0.1:7101 -upstream 127.0.0.1:7100 \
//	    -latency 5ms -jitter 5ms \
//	    -script "10s:cut;20s:blackhole=on;25s:blackhole=off"
//
// Point rsload (or any client) at -listen. On SIGINT/SIGTERM — or after
// -duration — the proxy drains and prints a JSON stats report to stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rangesearch/internal/netfault"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:0", "address to accept clients on")
		upstream = flag.String("upstream", "", "rsserve address to forward to (required)")
		seed     = flag.Int64("seed", 1, "RNG seed for fault decisions")
		latency  = flag.Duration("latency", 0, "added per-chunk latency, each direction")
		jitter   = flag.Duration("jitter", 0, "uniform extra latency in [0,jitter)")
		bw       = flag.Int("bw", 0, "bandwidth cap in bytes/sec per direction (0 = unlimited)")
		corrupt  = flag.Float64("corrupt", 0, "per-chunk bit-flip probability [0,1)")
		cutAfter = flag.Int64("cut-after", 0, "RST each connection after this many bytes (0 = never)")
		script   = flag.String("script", "", "timed fault script, e.g. \"2s:cut;5s:blackhole=on\"")
		duration = flag.Duration("duration", 0, "exit after this long (0 = until signal)")
		quiet    = flag.Bool("quiet", false, "suppress per-event logging")
	)
	flag.Parse()
	if *upstream == "" {
		fmt.Fprintln(os.Stderr, "rsproxy: -upstream is required")
		flag.Usage()
		os.Exit(2)
	}

	logf := log.Printf
	if *quiet {
		logf = func(string, ...interface{}) {}
	}
	var dirs []netfault.Directive
	if *script != "" {
		var err error
		if dirs, err = netfault.ParseScript(*script); err != nil {
			log.Fatalf("rsproxy: %v", err)
		}
	}

	p, err := netfault.New(*upstream, netfault.Options{
		Listen:        *listen,
		Seed:          *seed,
		Latency:       *latency,
		Jitter:        *jitter,
		BandwidthBPS:  *bw,
		CorruptProb:   *corrupt,
		CutAfterBytes: *cutAfter,
		Logf:          logf,
	})
	if err != nil {
		log.Fatalf("rsproxy: %v", err)
	}
	logf("rsproxy: %s", p)

	stop := make(chan struct{})
	if len(dirs) > 0 {
		go netfault.RunScript(p, dirs, stop)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	if *duration > 0 {
		select {
		case <-sigc:
		case <-time.After(*duration):
		}
	} else {
		<-sigc
	}
	close(stop)
	stats := p.Stats()
	p.Close()

	out, _ := json.MarshalIndent(stats, "", "  ")
	fmt.Println(string(out))
}
