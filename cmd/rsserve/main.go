// Command rsserve serves a range-search index over TCP, speaking the
// length-prefixed binary protocol of internal/server. It is the
// paper-to-production end of the repo: the same EPST that the analysis
// bounds at O(log_B N + t) I/Os per query answers queries from sockets,
// with group-committed durable writes, snapshot-isolated reads, admission
// control, and a graceful SIGTERM drain that leaves the store scrub-clean.
//
// Store stacks:
//
//	-mem                volatile:  SnapStore(MemStore)
//	-store X            durable:   SnapStore(TxStore(FileStore)), WAL
//	                    group commits, crash-recoverable (default)
//	-store X -durable=false -pool N
//	                    volatile cache: SnapStore(ShardedPool(FileStore))
//
// A file-backed store is created on first use and reopened afterwards; the
// structure's header id and the transactional anchor are remembered in a
// JSON manifest next to the store (X.manifest.json), so a restart needs no
// flags beyond -store. A corrupt, truncated, or incomplete manifest fails
// startup with a diagnostic instead of misopening the store. Reopening a
// durable store runs WAL crash recovery first, exactly like rsinspect
// recover, then (unless -boot-scrub=false) reclaims any pages a crash
// stranded mid-copy-on-write, so a SIGKILL/restart cycle converges back to
// a leak-free store.
//
// Write-optimized mode (-write-buffer) puts the dynamic-indexability
// buffered-update decorator (internal/wbuf) between the server and the
// engine: inserts and deletes stage in an in-memory delta buffer —
// journaled to a checksummed sidecar next to the store (X.wbuf), so an
// acknowledged write survives SIGKILL — and bulk-flush through the
// group-commit engine when the buffer crosses -write-buffer-ops entries
// or its oldest entry exceeds -write-buffer-age. Queries merge buffered
// deltas with base results, so reads are exact at all times. A journal
// left behind by a crashed (or de-flagged) buffered run is replayed on
// the next boot regardless of flags. Incompatible with replication:
// buffered writes are not in the shipped WAL.
//
// On SIGTERM/SIGINT the server drains: the listener closes, in-flight
// requests finish and flush, the write buffer (if any) folds into the
// base and truncates its journal, the last epoch commits, and the
// process exits 0 only if the store is verifiably scrub-clean (no leaked
// pages) and synced. `rsinspect scrub -dry` on the store afterwards must
// find nothing — the CI smoke job asserts exactly that.
//
// Usage:
//
//	rsserve -addr :9035 -mem
//	rsserve -addr :9035 -store points.db
//	rsserve -addr :9035 -store points.db -metrics 127.0.0.1:6060
//	rsserve -addr :9035 -store points.db -write-buffer -write-buffer-ops 4096
//	rsserve -addr :9035 -store points.db -trace-sample 0.01 -slowlog 50ms -spans spans.jsonl
//
// Request tracing: -trace-sample traces every Nth request end to end
// (admission, queue, leadership, execute, WAL append, sync, commit,
// reply flush, plus exact per-request block I/O); -slowlog logs any
// request slower than the threshold with its full span and its
// Theorem 6/7 I/O allowance; sampled spans are retained for the
// /spans endpoint and optionally spooled to a JSONL file `rsinspect
// spans` can replay. The /metrics endpoint on -metrics serves the
// whole expvar surface in the Prometheus text exposition format.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rangesearch/internal/core"
	"rangesearch/internal/eio"
	"rangesearch/internal/epst"
	"rangesearch/internal/obs"
	"rangesearch/internal/repl"
	"rangesearch/internal/server"
	"rangesearch/internal/wbuf"
)

// manifest remembers, next to a file-backed store, everything needed to
// reopen it: the page ids that anchor the structure and the transactional
// layer, and the geometry the store was created with.
type manifest struct {
	PageSize int        `json:"page_size"`
	Durable  bool       `json:"durable"`
	WALPages int        `json:"wal_pages,omitempty"`
	Hdr      eio.PageID `json:"hdr"`
	Anchor   eio.PageID `json:"anchor,omitempty"`
	// Term is the replication fencing term: the monotonic counter that
	// orders primary lineages. It is persisted BEFORE the store accepts
	// any write under it, so a resurrected process knows which lineage
	// its data belongs to.
	Term uint64 `json:"term,omitempty"`
	// Role is what the store last ran as: "" or "primary", "replica", or
	// "fenced" (an ex-primary that learned of a newer term and must not
	// accept writes until re-replicated or explicitly forced).
	Role string `json:"role,omitempty"`
	// WriteBuffer records that the store last ran in write-optimized
	// mode, so tooling (and the next boot) knows a sidecar write-buffer
	// journal may hold acknowledged-but-unflushed updates. The journal is
	// replayed on reopen even if -write-buffer is absent — acked writes
	// must never depend on the operator remembering a flag.
	WriteBuffer bool `json:"write_buffer,omitempty"`
	// WriteBufferOps is the flush threshold the buffer last ran with.
	WriteBufferOps int `json:"write_buffer_ops,omitempty"`
}

func manifestPath(storePath string) string { return storePath + ".manifest.json" }

// wbufJournalPath is the sidecar write-buffer journal, next to the store
// like the manifest is.
func wbufJournalPath(storePath string) string { return storePath + ".wbuf" }

func fileNonEmpty(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.Size() > 0
}

// manifestBufOps is what the manifest records as the buffer threshold:
// the configured value when buffering, zero when not.
func manifestBufOps(on bool, ops int) int {
	if on {
		return ops
	}
	return 0
}

// validate rejects manifests that parse but cannot describe a real store
// — a truncated or hand-edited file must fail here with a diagnostic, not
// downstream as a zero-value misopen of page 0.
func (m *manifest) validate(path string) error {
	switch {
	case m.PageSize <= 0:
		return fmt.Errorf("manifest %s: page_size %d is not positive", path, m.PageSize)
	case m.Hdr == eio.NilPage:
		return fmt.Errorf("manifest %s: hdr is missing or nil — no structure root to open", path)
	case m.Durable && m.Anchor == eio.NilPage:
		return fmt.Errorf("manifest %s: durable store without an anchor — cannot run WAL recovery", path)
	case m.WALPages < 0:
		return fmt.Errorf("manifest %s: negative wal_pages %d", path, m.WALPages)
	case m.WriteBufferOps < 0:
		return fmt.Errorf("manifest %s: negative write_buffer_ops %d", path, m.WriteBufferOps)
	}
	switch m.Role {
	case "", "primary", "replica", "fenced":
	default:
		return fmt.Errorf("manifest %s: unknown role %q", path, m.Role)
	}
	return nil
}

func readManifest(storePath string) (*manifest, error) {
	raw, err := os.ReadFile(manifestPath(storePath))
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("manifest %s: not valid JSON (corrupt or truncated?): %w", manifestPath(storePath), err)
	}
	if err := m.validate(manifestPath(storePath)); err != nil {
		return nil, err
	}
	return &m, nil
}

func writeManifest(storePath string, m *manifest) error {
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(manifestPath(storePath), append(raw, '\n'), 0o644)
}

// stack is the assembled storage and index pyramid rsserve serves from.
type stack struct {
	conc *core.Concurrent
	idx  *core.ThreeSided
	snap *eio.SnapStore
	tx   *eio.TxStore // nil on non-durable stacks
	m    *manifest
}

// buildMem assembles the volatile stack.
func buildMem(pageSize int) (*stack, error) {
	snap := eio.NewSnapStore(eio.NewMemStore(pageSize), 0)
	tracer := eio.NewTraceStore(snap)
	idx, err := core.NewThreeSided(tracer, epst.Options{})
	if err != nil {
		return nil, err
	}
	return finish(snap, tracer, idx, nil, &manifest{PageSize: pageSize, Hdr: idx.HeaderID()})
}

// bootScrub reclaims pages a SIGKILL stranded: SnapStore defers frees to
// the next epoch commit, so a crash leaks (never corrupts) the pages of
// in-flight copy-on-write updates. After WAL recovery the tree is
// consistent, so anything outside its exact reachability set (plus the
// transactional metadata) is garbage — free it before serving resumes.
func bootScrub(tx *eio.TxStore, hdr eio.PageID) (*eio.ScrubReport, error) {
	tmp, err := core.OpenThreeSided(tx, hdr)
	if err != nil {
		return nil, fmt.Errorf("boot scrub: open tree: %w", err)
	}
	reachable, err := tmp.Tree().AppendAllPages(nil)
	if err != nil {
		return nil, fmt.Errorf("boot scrub: reachability walk: %w", err)
	}
	meta, err := tx.MetaPages()
	if err != nil {
		return nil, fmt.Errorf("boot scrub: tx meta pages: %w", err)
	}
	rep, err := eio.Scrub(tx, append(reachable, meta...))
	if err != nil {
		return nil, fmt.Errorf("boot scrub: %w", err)
	}
	if len(rep.Leaked) > 0 {
		if err := tx.Sync(); err != nil {
			return rep, fmt.Errorf("boot scrub: sync: %w", err)
		}
	}
	return rep, nil
}

// buildFile assembles (creating or reopening) a file-backed stack.
func buildFile(path string, pageSize int, durable bool, walPages, poolCap, poolShards int, scrubOnBoot bool) (*stack, error) {
	_, statErr := os.Stat(path)
	fresh := os.IsNotExist(statErr)

	if fresh {
		fs, err := eio.CreateFileStore(path, pageSize)
		if err != nil {
			return nil, err
		}
		m := &manifest{PageSize: pageSize, Durable: durable}
		var base eio.Store = fs
		var tx *eio.TxStore
		if durable {
			tx, err = eio.NewTxStore(fs, eio.TxOptions{WALPages: walPages})
			if err != nil {
				fs.Close()
				return nil, err
			}
			m.WALPages = walPages
			m.Anchor = tx.Anchor()
			base = tx
		} else if poolCap > 0 {
			base = eio.NewShardedPool(fs, poolCap, poolShards)
		}
		snap := eio.NewSnapStore(base, 0)
		tracer := eio.NewTraceStore(snap)
		idx, err := core.NewThreeSided(tracer, epst.Options{})
		if err != nil {
			snap.Close()
			return nil, err
		}
		m.Hdr = idx.HeaderID()
		if err := writeManifest(path, m); err != nil {
			snap.Close()
			return nil, err
		}
		return finish(snap, tracer, idx, tx, m)
	}

	m, err := readManifest(path)
	if err != nil {
		return nil, fmt.Errorf("store %s exists but its manifest is unreadable: %w", path, err)
	}
	fs, err := eio.OpenFileStore(path)
	if err != nil {
		return nil, err
	}
	var base eio.Store = fs
	var tx *eio.TxStore
	if m.Durable {
		tx, err = eio.OpenTxStore(fs, m.Anchor)
		if err != nil {
			fs.Close()
			return nil, fmt.Errorf("WAL recovery: %w", err)
		}
		if ri := tx.Recovery(); ri.Replayed || ri.WALRepaired > 0 || ri.AnchorsRepaired > 0 {
			fmt.Printf("rsserve: WAL recovery: replayed=%v pages_redone=%d wal_repaired=%d anchors_repaired=%d\n",
				ri.Replayed, ri.PagesRedone, ri.WALRepaired, ri.AnchorsRepaired)
		}
		if scrubOnBoot {
			rep, err := bootScrub(tx, m.Hdr)
			if err != nil {
				tx.Close()
				return nil, err
			}
			if len(rep.Leaked) > 0 {
				fmt.Printf("rsserve: boot scrub: reclaimed %d pages a crash stranded\n", len(rep.Leaked))
			}
		}
		base = tx
	} else if poolCap > 0 {
		base = eio.NewShardedPool(fs, poolCap, poolShards)
	}
	snap := eio.NewSnapStore(base, 0)
	tracer := eio.NewTraceStore(snap)
	idx, err := core.OpenThreeSided(tracer, m.Hdr)
	if err != nil {
		snap.Close()
		return nil, err
	}
	return finish(snap, tracer, idx, tx, m)
}

// finish publishes the base epoch and wraps the index in the serving
// layer (a Durable writer when the stack has a WAL). The writer index
// sits on tracer (a TraceStore over snap) so the group-commit leader
// can attribute the exact block I/Os of each traced request; the
// tracer's sink stays nil for untraced work, which costs one atomic
// load per page operation.
func finish(snap *eio.SnapStore, tracer *eio.TraceStore, idx *core.ThreeSided, tx *eio.TxStore, m *manifest) (*stack, error) {
	hdr := idx.HeaderID()
	if _, err := snap.Commit(); err != nil {
		snap.Close()
		return nil, err
	}
	var writer core.Index = idx
	if tx != nil {
		writer = core.NewDurable(idx, tx)
	}
	conc, err := core.NewConcurrent(writer, snap,
		func(s eio.Store) (core.Index, error) { return core.OpenThreeSided(s, hdr) },
		core.ConcurrentOptions{Tracer: tracer})
	if err != nil {
		snap.Close()
		return nil, err
	}
	return &stack{conc: conc, idx: idx, snap: snap, tx: tx, m: m}, nil
}

// drainClean runs the shutdown storage protocol: unpin the serving view,
// commit the final epoch (applying deferred frees), verify page-exact
// reachability, sync, close. It returns the number of leaked pages.
func (s *stack) drainClean() (int, error) {
	s.conc.Close()
	if _, err := s.snap.Commit(); err != nil {
		return 0, fmt.Errorf("final commit: %w", err)
	}
	reachable, err := s.idx.Tree().AppendAllPages(nil)
	if err != nil {
		return 0, fmt.Errorf("reachability walk: %w", err)
	}
	if s.tx != nil {
		meta, err := s.tx.MetaPages()
		if err != nil {
			return 0, fmt.Errorf("tx meta pages: %w", err)
		}
		reachable = append(reachable, meta...)
	}
	rep, err := eio.FindLeaks(s.snap, reachable)
	if err != nil {
		return 0, fmt.Errorf("leak check: %w", err)
	}
	if s.tx != nil {
		if err := s.tx.Sync(); err != nil {
			return len(rep.Leaked), fmt.Errorf("sync: %w", err)
		}
	}
	if err := s.snap.Close(); err != nil {
		return len(rep.Leaked), fmt.Errorf("close: %w", err)
	}
	return len(rep.Leaked), nil
}

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:9035", "TCP listen address")
		store   = flag.String("store", "", "path to a file-backed store (created on first use)")
		mem     = flag.Bool("mem", false, "serve from an in-memory store instead of a file")
		page    = flag.Int("page", 4096, "page size in bytes when creating a store")
		durable = flag.Bool("durable", true, "file stores: WAL-backed atomic commits (crash-recoverable)")
		wal     = flag.Int("wal", eio.DefaultWALPages, "WAL capacity in pages for durable stores")
		poolCap = flag.Int("pool", 0, "non-durable file stores: buffer-pool capacity in pages (0 = none)")
		shards  = flag.Int("shards", eio.DefaultPoolShards, "buffer-pool shard count")

		maxInFlight = flag.Int("max-inflight", 64, "admission gate: max RPCs in flight before BUSY")
		maxBatch    = flag.Int("max-batch", server.DefaultMaxBatchOps, "max operations in one BATCH request")
		idleT       = flag.Duration("idle-timeout", 2*time.Minute, "close connections idle longer than this")
		writeT      = flag.Duration("write-timeout", 30*time.Second, "per-response write deadline")
		reqT        = flag.Duration("request-timeout", 10*time.Second, "per-request execution deadline; expired requests answer TIMEOUT (0 = off)")
		retryAfter  = flag.Duration("retry-after", 2*time.Millisecond, "backoff hint attached to BUSY responses (<0 = omit)")
		idemClients = flag.Int("idem-clients", 256, "idempotency dedup: max client sessions tracked (<0 = off)")
		idemWindow  = flag.Int("idem-window", 512, "idempotency dedup: completed writes remembered per session")
		scrubBoot   = flag.Bool("boot-scrub", true, "durable stores: reclaim crash-leaked pages after WAL recovery")
		metricsAddr = flag.String("metrics", "", "serve expvar+pprof+/metrics on this address (empty = off)")

		traceSample = flag.Float64("trace-sample", 0, "trace this fraction of requests end to end (0..1; 0 = only client-stamped TRACE envelopes)")
		slowLog     = flag.Duration("slowlog", 0, "log requests slower than this with their full span (0 = off; arming it traces every request)")
		spansPath   = flag.String("spans", "", "spool sampled spans to this JSONL file")
		spanRing    = flag.Int("span-ring", 256, "sampled spans retained for the /spans endpoint")

		writeBuffer    = flag.Bool("write-buffer", false, "write-optimized mode: buffer updates in memory (journaled next to the store), merge-on-read queries, bulk flushes")
		writeBufferOps = flag.Int("write-buffer-ops", wbuf.DefaultMaxOps, "write buffer flush threshold in buffered operations")
		writeBufferAge = flag.Duration("write-buffer-age", wbuf.DefaultMaxAge, "flush the write buffer when its oldest entry exceeds this age (0 = size-only)")

		replListen    = flag.String("repl-listen", "", "serve the replication protocol (log shipping, PROMOTE RPC) on this address")
		replicateFrom = flag.String("replicate-from", "", "run as a read replica of the primary at this replication address")
		replSync      = flag.Int("repl-sync", 0, "semi-sync: each write's OK waits until this many replicas are durable (0 = async)")
		replSyncT     = flag.Duration("repl-sync-timeout", 5*time.Second, "semi-sync gate deadline; writes missing it answer TIMEOUT")
		replBootT     = flag.Duration("repl-boot-timeout", 2*time.Minute, "replicas: give up on the initial sync after this long")
		forcePrimary  = flag.Bool("force-primary", false, "start a store last run as replica/fenced as a primary, bumping its term (manual failover of last resort)")
	)
	flag.Parse()

	if (*store == "") == !*mem {
		fmt.Fprintln(os.Stderr, "rsserve: exactly one of -store or -mem is required")
		os.Exit(2)
	}
	replicated := *replListen != "" || *replicateFrom != ""
	if replicated && (*mem || !*durable || *store == "") {
		fmt.Fprintln(os.Stderr, "rsserve: replication requires a durable file store (-store, -durable)")
		os.Exit(2)
	}
	if *writeBuffer && replicated {
		// Buffered writes are durable in the sidecar journal, not the base
		// WAL, so log shipping would silently omit them. Refuse rather than
		// replicate a lie.
		fmt.Fprintln(os.Stderr, "rsserve: -write-buffer is incompatible with replication (buffered writes are not in the shipped WAL)")
		os.Exit(2)
	}
	if *replicateFrom != "" && *store != "" {
		// The same hazard in journal form: replaying a leftover buffer
		// journal into a replica would apply writes outside the shipped
		// WAL and silently diverge it from the primary.
		if jpath := wbufJournalPath(*store); fileNonEmpty(jpath) {
			fmt.Fprintf(os.Stderr, "rsserve: store has a leftover write-buffer journal %s; a replica must not apply writes outside the shipped WAL — boot once without -replicate-from to fold it in, or remove it if the primary already holds those writes\n", jpath)
			os.Exit(2)
		}
	}
	if *writeBufferOps < 1 {
		fmt.Fprintln(os.Stderr, "rsserve: -write-buffer-ops must be at least 1")
		os.Exit(2)
	}
	logf := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "rsserve: "+format+"\n", args...)
	}

	if *forcePrimary && *store != "" {
		if m, err := readManifest(*store); err == nil && (m.Role == "replica" || m.Role == "fenced") {
			m.Term++
			m.Role = "primary"
			if err := writeManifest(*store, m); err != nil {
				fmt.Fprintf(os.Stderr, "rsserve: -force-primary: %v\n", err)
				os.Exit(1)
			}
			logf("-force-primary: store takes over as primary at term %d", m.Term)
		}
	}

	var (
		st      *stack
		rn      *replicaNode
		node    *repl.Node
		shipper *repl.Shipper
		err     error
	)
	switch {
	case *replicateFrom != "":
		rn, err = startReplica(*store, *replicateFrom, *scrubBoot, *replSync, *replSyncT, *replBootT, logf)
		if err == nil {
			node = rn.node
		}
	case *mem:
		st, err = buildMem(*page)
	default:
		st, err = buildFile(*store, *page, *durable, *wal, *poolCap, *shards, *scrubBoot)
		if err == nil && st.m.Role == "replica" {
			_, _ = st.drainClean()
			err = fmt.Errorf("store %s last ran as a replica; start it with -replicate-from, or -force-primary to take over", *store)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rsserve: %v\n", err)
		os.Exit(1)
	}

	// Write-optimized mode: wrap the engine in the buffered-update
	// decorator. Even without -write-buffer, a sidecar journal left behind
	// by a buffered run (crash, or the operator dropping the flag) is
	// replayed and folded into the base first — acknowledged writes must
	// never depend on the next boot remembering a flag.
	var buf *wbuf.Buffered
	if st != nil {
		switch {
		case *writeBuffer && st.tx != nil:
			// One durability barrier before the first buffered ack: with
			// every update absorbed by the buffer, the base may not commit
			// (and persist its allocation superblock) until the first
			// flush, and a SIGKILL before then would leave a store whose
			// creation epoch never reached disk — unopenable, journal or
			// no journal.
			jpath := wbufJournalPath(*store)
			if err = st.tx.Sync(); err == nil {
				buf, err = wbuf.NewBuffered(st.conc, wbuf.Options{
					MaxOps:  *writeBufferOps,
					MaxAge:  *writeBufferAge,
					Journal: jpath,
				})
			}
			if err == nil {
				logf("write buffer on: flush at %d ops / %s age, journal %s", *writeBufferOps, *writeBufferAge, jpath)
				if r := buf.WriteBufferStats().Replayed; r > 0 {
					logf("write buffer: replayed %d journaled ops into the store", r)
				}
			}
		case *writeBuffer:
			// -mem or a non-durable file store: a journal could not promise
			// more than the base itself does, so the buffer runs volatile.
			buf, err = wbuf.NewBuffered(st.conc, wbuf.Options{MaxOps: *writeBufferOps, MaxAge: *writeBufferAge})
			if err == nil {
				logf("write buffer on (volatile): flush at %d ops / %s age", *writeBufferOps, *writeBufferAge)
			}
		case *store != "":
			if jpath := wbufJournalPath(*store); fileNonEmpty(jpath) {
				var tmp *wbuf.Buffered
				if tmp, err = wbuf.NewBuffered(st.conc, wbuf.Options{Journal: jpath}); err == nil {
					err = tmp.Close() // replay happened in NewBuffered; Close flushes and truncates
				}
				if err == nil {
					logf("replayed leftover write-buffer journal %s into the store", jpath)
				}
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "rsserve: write buffer: %v\n", err)
			os.Exit(1)
		}
		if *store != "" && (st.m.WriteBuffer != (buf != nil) || st.m.WriteBufferOps != manifestBufOps(buf != nil, *writeBufferOps)) {
			st.m.WriteBuffer = buf != nil
			st.m.WriteBufferOps = manifestBufOps(buf != nil, *writeBufferOps)
			if err := writeManifest(*store, st.m); err != nil {
				fmt.Fprintf(os.Stderr, "rsserve: manifest: %v\n", err)
				os.Exit(1)
			}
		}
	}

	if *replListen != "" {
		if rn != nil {
			// A replica's repl port exists for the PROMOTE RPC now and
			// for shipping to its own replicas after promotion.
			mSnap := rn.manifestSnapshot()
			rn.shipper = repl.NewShipper(repl.ShipperConfig{
				Term:       mSnap.Term,
				Primary:    false,
				PageSize:   mSnap.PageSize,
				Dir:        uint64(mSnap.Anchor),
				Hdr:        uint64(mSnap.Hdr),
				DurableLSN: rn.node.AppliedLSN,
				Logf:       logf,
			})
			rn.shipper.SetOnPromote(rn.promote)
			replLn, lerr := net.Listen("tcp", *replListen)
			if lerr != nil {
				fmt.Fprintf(os.Stderr, "rsserve: repl listen: %v\n", lerr)
				os.Exit(1)
			}
			shipper = rn.shipper
			go shipper.Serve(replLn)
			logf("replication port on %s (replica of %s, term %d)", replLn.Addr(), *replicateFrom, mSnap.Term)
		} else {
			node, shipper, err = startPrimaryRepl(st, *store, *replListen, *replSync, *replSyncT, logf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rsserve: %v\n", err)
				os.Exit(1)
			}
		}
	}

	metrics := &server.Metrics{}
	server.PublishMetrics("main", metrics)
	var wbStats func() obs.WriteBufferStats
	if buf != nil {
		obs.PublishWriteBuffer("serve", buf)
		wbStats = buf.WriteBufferStats
	}

	// Sampled spans always land in a ring (drained by the /spans
	// endpoint and dumped on drain); -spans additionally spools them to
	// a JSONL file rsinspect can replay.
	ring := obs.NewSpanRing(*spanRing)
	obs.SetSpanRing(ring)
	spans := obs.MultiSpanRecorder{ring}
	var spanFile *obs.SpanWriter
	if *spansPath != "" {
		var err error
		spanFile, err = obs.CreateSpanFile(*spansPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rsserve: spans: %v\n", err)
			os.Exit(1)
		}
		spans = append(spans, spanFile)
	}

	if *metricsAddr != "" {
		ms, err := obs.ServeMetrics(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rsserve: metrics: %v\n", err)
			os.Exit(1)
		}
		defer ms.Close()
		fmt.Printf("rsserve: metrics on http://%s/debug/vars (Prometheus: /metrics, spans: /spans)\n", ms.Addr())
	}

	// The server fronts a Backend: the bare engine on a standalone node,
	// the role-aware repl.Node when replication is on (so a follower's
	// writes answer NOTPRIMARY and a promotion swaps the engine without
	// restarting the server).
	var backend server.Backend
	var replInfoFn func() server.ReplInfo
	var termFn func() uint64
	switch {
	case rn != nil:
		backend = node
		replInfoFn = rn.replInfo
	case node != nil:
		backend = node
		n, sh, tx := node, shipper, st.tx
		replInfoFn = func() server.ReplInfo {
			role, term := n.Role()
			info := server.ReplInfo{Role: role, Term: term, AppliedLSN: tx.AppliedLSN()}
			if sh != nil {
				info.Replicas = len(sh.Replicas())
			}
			return info
		}
	default:
		if buf != nil {
			backend = buf
		} else {
			backend = st.conc
		}
	}
	if node != nil {
		// (term, LSN) barrier checks and write-ack stamping read the term
		// through the node so it stays coherent with the engine swap.
		n := node
		termFn = func() uint64 {
			_, term := n.Role()
			return term
		}
	}

	srv := server.New(backend, server.Config{
		MaxInFlight:    *maxInFlight,
		MaxBatchOps:    *maxBatch,
		IdleTimeout:    *idleT,
		WriteTimeout:   *writeT,
		RequestTimeout: *reqT,
		RetryAfterHint: *retryAfter,
		Idem:           server.IdemConfig{MaxClients: *idemClients, Window: *idemWindow},
		Repl:           replInfoFn,
		Term:           termFn,
		Metrics:        metrics,
		WriteBuffer:    wbStats,
		TraceSample:    *traceSample,
		SlowLog:        *slowLog,
		Spans:          spans,
		Logf: func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "rsserve: "+format+"\n", args...)
		},
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rsserve: %v\n", err)
		os.Exit(1)
	}
	if rn != nil {
		mSnap := rn.manifestSnapshot()
		fmt.Printf("rsserve: listening on %s  hdr=%d anchor=%d durable=%v (replica of %s)\n",
			ln.Addr(), mSnap.Hdr, mSnap.Anchor, mSnap.Durable, *replicateFrom)
	} else {
		fmt.Printf("rsserve: listening on %s  hdr=%d anchor=%d durable=%v\n",
			ln.Addr(), st.m.Hdr, st.m.Anchor, st.m.Durable)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT, syscall.SIGUSR1)
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

wait:
	for {
		select {
		case sig := <-sigc:
			if sig == syscall.SIGUSR1 {
				// Promotion signal: meaningful on a replica, a logged no-op
				// elsewhere. Runs off the signal loop so a slow promotion
				// does not mask a later SIGTERM.
				if rn != nil {
					go func() {
						if term, lsn, perr := rn.promote(); perr != nil {
							logf("SIGUSR1 promote: %v", perr)
						} else {
							logf("SIGUSR1 promote: primary at term %d lsn %d", term, lsn)
						}
					}()
				} else {
					logf("SIGUSR1: not a replica; ignoring")
				}
				continue
			}
			fmt.Printf("rsserve: %v: draining\n", sig)
			break wait
		case err := <-serveDone:
			fmt.Fprintf(os.Stderr, "rsserve: serve: %v\n", err)
			os.Exit(1)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "rsserve: shutdown: %v\n", err)
	}
	<-serveDone

	var leaked int
	if rn != nil {
		leaked, err = rn.drain()
	} else {
		if shipper != nil {
			shipper.Close()
		}
		if buf != nil {
			// Fold every buffered write into the base and truncate the
			// journal, so the drained store is complete and scrub-clean on
			// its own — the journal holds nothing after a clean exit.
			if cerr := buf.Close(); cerr != nil {
				fmt.Fprintf(os.Stderr, "rsserve: write buffer drain: %v\n", cerr)
				os.Exit(1)
			}
			if d := buf.Depth(); d != 0 {
				fmt.Fprintf(os.Stderr, "rsserve: write buffer drain left %d buffered ops\n", d)
				os.Exit(3)
			}
		}
		leaked, err = st.drainClean()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rsserve: drain: %v\n", err)
		os.Exit(1)
	}
	if leaked != 0 {
		fmt.Fprintf(os.Stderr, "rsserve: drain left %d leaked pages\n", leaked)
		os.Exit(3)
	}
	if spanFile != nil {
		if err := spanFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "rsserve: spans: %v\n", err)
		}
	}
	snap := metrics.Snapshot()
	fmt.Printf("rsserve: drained clean: %d conns accepted, busy=%d proto_errors=%d panics=%d spans=%d\n",
		snap.Accepted, snap.Busy, snap.ProtoErrors, snap.Panics, snap.Spans)
}
