package main

// Replication wiring: how one rsserve process becomes a shipping primary,
// a read replica, or a replica promoted to primary at runtime.
//
// Primary (-repl-listen): the durable stack is fronted by a repl.Node and
// a repl.Shipper taps the TxStore commit hook, so every group commit's
// redo record fans out to connected replicas; bootstrap snapshots are cut
// under the engine's write barrier (store quiescent, anchors exact). With
// -repl-sync N the engine's commit gate holds each write's OK until N
// replicas acked its LSN.
//
// Replica (-replicate-from): the process first syncs — resuming from its
// local store when the primary can replay the gap from its backlog, or
// receiving a full page-level clone otherwise — then serves reads from a
// fenced stack (writes answer NOTPRIMARY) while a background loop applies
// shipped records, publishing one epoch per record. Promotion (SIGUSR1 or
// the PROMOTE RPC on -repl-listen) drains the apply loop, persists a
// bumped term to the manifest BEFORE accepting any write, rebuilds a
// writable stack over the same file (reclaiming replica-leaked pages),
// and swaps it in under the node's exclusive lock.

import (
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"rangesearch/internal/core"
	"rangesearch/internal/eio"
	"rangesearch/internal/repl"
	"rangesearch/internal/server"
)

// cutSnapshot clones every live page (data and tx meta alike) under the
// write barrier: the TxStore is quiescent there, so the file image and
// the anchors agree at exactly AppliedLSN.
func cutSnapshot(st *stack) func() (*repl.Snapshot, error) {
	return func() (*repl.Snapshot, error) {
		var snap *repl.Snapshot
		err := st.conc.Barrier(func() error {
			ids, err := st.tx.LivePageIDs()
			if err != nil {
				return err
			}
			ps := st.m.PageSize
			snap = &repl.Snapshot{LSN: st.tx.AppliedLSN()}
			for _, id := range ids {
				img := make([]byte, ps)
				if err := st.tx.Read(id, img); err != nil {
					return fmt.Errorf("snapshot read page %d: %w", id, err)
				}
				snap.Pages = append(snap.Pages, repl.SnapPage{ID: uint64(id), Image: img})
			}
			return nil
		})
		return snap, err
	}
}

// startPrimaryRepl fronts a durable stack with a Node and starts the
// shipper on lnAddr. syncN > 0 arms the semi-synchronous commit gate.
func startPrimaryRepl(st *stack, storePath, lnAddr string, syncN int, syncT time.Duration,
	logf func(string, ...any)) (*repl.Node, *repl.Shipper, error) {
	if st.tx == nil {
		return nil, nil, fmt.Errorf("replication requires a durable file store")
	}
	fenced := st.m.Role == "fenced"
	node := repl.NewNode(st.conc, true, st.m.Term, nil)
	if fenced {
		node.Fence(st.m.Term)
		logf("store was fenced at term %d: serving reads only (re-replicate or -force-primary to recover)", st.m.Term)
	}
	shipper := repl.NewShipper(repl.ShipperConfig{
		Term:        st.m.Term,
		Primary:     !fenced,
		PageSize:    st.m.PageSize,
		Dir:         uint64(st.m.Anchor),
		Hdr:         uint64(st.m.Hdr),
		DurableLSN:  st.tx.AppliedLSN,
		CutSnapshot: cutSnapshot(st),
		OnFence: func(term uint64) {
			node.Fence(term)
			st.m.Term = term
			st.m.Role = "fenced"
			if err := writeManifest(storePath, st.m); err != nil {
				logf("persist fence: %v", err)
			}
			logf("fenced by term %d: refusing writes from now on", term)
		},
		Logf: logf,
	})
	// An already-writable node answers PROMOTE with its current identity,
	// so failover tooling can treat the RPC as idempotent.
	shipper.SetOnPromote(func() (uint64, uint64, error) {
		if role, term := node.Role(); role == "primary" {
			return term, st.tx.AppliedLSN(), nil
		}
		return 0, 0, fmt.Errorf("node is fenced; restart with -replicate-from or -force-primary")
	})
	st.tx.SetCommitHook(shipper.Commit)
	if syncN > 0 {
		st.conc.SetCommitGate(func() error {
			return shipper.WaitAcked(st.tx.AppliedLSN(), syncN, syncT)
		})
	}
	ln, err := net.Listen("tcp", lnAddr)
	if err != nil {
		return nil, nil, fmt.Errorf("repl listen: %w", err)
	}
	go shipper.Serve(ln)
	logf("shipping replication on %s (term %d, sync=%d)", ln.Addr(), st.m.Term, syncN)
	return node, shipper, nil
}

// replicaNode is the runtime state of an rsserve process running as a
// read replica (and possibly later promoted).
type replicaNode struct {
	storePath string
	primary   string
	scrubBoot bool
	syncN     int
	syncT     time.Duration
	logf      func(string, ...any)

	node    *repl.Node
	shipper *repl.Shipper // non-nil when -repl-listen is set

	// txrA mirrors rn.txr for the apply loop, which must not take rn.mu
	// on its hot path (promote holds rn.mu while taking the node's write
	// lock — the reverse order of a barriered read).
	txrA     atomic.Pointer[eio.TxReplica]
	follower atomic.Pointer[repl.Follower]

	// pubLSN is the node's PUBLISHED position: the highest applied LSN
	// whose epoch readers can already see. It advances strictly after
	// snap.Commit (and, on a re-clone, after the engine swap), never
	// before — the read barrier must compare against it rather than the
	// applier's durable LSN, or a barriered query landing between apply
	// and publish would pass the staleness check yet read the previous
	// epoch, resurrecting writes the client saw acked.
	pubLSN atomic.Uint64

	mu       sync.Mutex
	m        *manifest
	fs       *eio.FileStore
	txr      *eio.TxReplica
	st       *stack // current serving stack (fenced until promoted)
	promoted bool
	stopping bool

	promDone chan struct{} // closed when a promotion attempt finishes
	promTerm uint64
	promLSN  uint64
	promErr  error

	loopDone chan struct{}
}

// buildFollowerStack assembles the read-only serving pyramid over an
// existing replica store: SnapStore for epoch isolation, TxReplica as
// the applier, a FencedIndex as the (never-used) writer.
func buildFollowerStack(fs *eio.FileStore, m *manifest) (*stack, *eio.TxReplica, error) {
	snap := eio.NewSnapStore(fs, 0)
	txr, err := eio.OpenTxReplica(fs, snap, m.Anchor)
	if err != nil {
		return nil, nil, fmt.Errorf("open replica applier: %w", err)
	}
	if ri := txr.Recovery(); ri.Dirty() {
		fmt.Printf("rsserve: replica WAL recovery: %s\n", ri)
	}
	tracer := eio.NewTraceStore(snap)
	idx, err := core.OpenThreeSided(tracer, m.Hdr)
	if err != nil {
		return nil, nil, fmt.Errorf("open replica tree: %w", err)
	}
	if _, err := snap.Commit(); err != nil {
		return nil, nil, err
	}
	hdr := m.Hdr
	conc, err := core.NewConcurrent(&repl.FencedIndex{Reads: idx}, snap,
		func(s eio.Store) (core.Index, error) { return core.OpenThreeSided(s, hdr) },
		core.ConcurrentOptions{Tracer: tracer})
	if err != nil {
		return nil, nil, err
	}
	return &stack{conc: conc, idx: idx, snap: snap, m: m}, txr, nil
}

// startReplica syncs with the primary (blocking, with retries until
// bootT expires), builds the fenced serving stack, and starts the
// background apply loop. The returned node is ready to serve reads.
func startReplica(storePath string, primaryAddr string, scrubBoot bool,
	syncN int, syncT, bootT time.Duration, logf func(string, ...any)) (*replicaNode, error) {
	rn := &replicaNode{
		storePath: storePath,
		primary:   primaryAddr,
		scrubBoot: scrubBoot,
		syncN:     syncN,
		syncT:     syncT,
		logf:      logf,
		loopDone:  make(chan struct{}),
	}

	// Reopen local state when it exists; its position makes resume cheap.
	if _, err := os.Stat(storePath); err == nil {
		m, err := readManifest(storePath)
		if err != nil {
			return nil, fmt.Errorf("store %s exists but its manifest is unreadable: %w", storePath, err)
		}
		if !m.Durable {
			return nil, fmt.Errorf("store %s is not durable; replication needs the WAL layout", storePath)
		}
		fs, err := eio.OpenFileStore(storePath)
		if err != nil {
			return nil, err
		}
		st, txr, err := buildFollowerStack(fs, m)
		if err != nil {
			fs.Close()
			return nil, err
		}
		rn.m, rn.fs, rn.st, rn.txr = m, fs, st, txr
		rn.txrA.Store(txr)
		rn.pubLSN.Store(txr.AppliedLSN())
		logf("replica store reopened at term %d lsn %d", m.Term, txr.AppliedLSN())
	}

	// First sync is synchronous: the replica does not serve reads built
	// on no data. Retry inside the boot budget — the primary may still
	// be coming up.
	deadline := time.Now().Add(bootT)
	var sess *repl.Session
	for {
		var err error
		sess, err = rn.connect()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			rn.mu.Lock()
			rn.teardownLocked()
			rn.mu.Unlock()
			return nil, fmt.Errorf("initial sync with %s: %w", primaryAddr, err)
		}
		logf("initial sync: %v (retrying)", err)
		time.Sleep(500 * time.Millisecond)
	}

	rn.node = repl.NewNode(rn.st.conc, false, rn.m.Term, rn.pubLSN.Load)
	go rn.loop(sess)
	return rn, nil
}

// connect dials the primary and brings the local store in sync: a resume
// reuses it, a snapshot session rebuilds it from scratch. On success the
// local manifest carries the session's term.
func (rn *replicaNode) connect() (*repl.Session, error) {
	h := repl.Hello{}
	rn.mu.Lock()
	if rn.m != nil && rn.txr != nil {
		h = repl.Hello{
			Term:     rn.m.Term,
			LSN:      rn.txr.AppliedLSN(),
			PageSize: rn.m.PageSize,
			Dir:      uint64(rn.m.Anchor),
		}
	}
	rn.mu.Unlock()

	sess, err := repl.DialPrimary(rn.primary, h, 10*time.Second)
	if err != nil {
		return nil, err
	}
	switch sess.Kind() {
	case repl.KindResume:
		rn.mu.Lock()
		if rn.m.Term != sess.Term() {
			rn.m.Term = sess.Term()
			if err := writeManifest(rn.storePath, rn.m); err != nil {
				rn.mu.Unlock()
				sess.Close()
				return nil, fmt.Errorf("adopt term %d: %w", sess.Term(), err)
			}
		}
		rn.mu.Unlock()
		rn.logf("resuming from %s at lsn %d (term %d)", rn.primary, sess.StartLSN(), sess.Term())
		return sess, nil

	case repl.KindSnapshot:
		info := sess.Snap()
		rn.logf("bootstrapping from %s: %d pages at lsn %d (term %d)",
			rn.primary, info.NPages, info.LSN, info.Term)
		// The old stack (if any) keeps serving reads for the whole
		// transfer: the store file is unlinked but its open handle stays
		// valid, and the node is rebound only once the clone is complete.
		rn.mu.Lock()
		oldSt, oldFs := rn.st, rn.fs
		_ = os.Remove(rn.storePath)
		_ = os.Remove(manifestPath(rn.storePath))
		fs, err := eio.CreateFileStore(rn.storePath, info.PageSize)
		if err != nil {
			rn.mu.Unlock()
			sess.Close()
			return nil, err
		}
		err = sess.ReceiveSnapshot(func(id uint64, image []byte) error {
			if err := fs.EnsurePage(eio.PageID(id)); err != nil {
				return err
			}
			return fs.Write(eio.PageID(id), image)
		})
		if err == nil {
			err = fs.Sync()
		}
		if err != nil {
			fs.Close()
			_ = os.Remove(rn.storePath)
			rn.mu.Unlock()
			sess.Close()
			return nil, fmt.Errorf("receive snapshot: %w", err)
		}
		m := &manifest{
			PageSize: info.PageSize,
			Durable:  true,
			Hdr:      eio.PageID(info.Hdr),
			Anchor:   eio.PageID(info.Dir),
			Term:     info.Term,
			Role:     "replica",
		}
		if err := writeManifest(rn.storePath, m); err != nil {
			fs.Close()
			rn.mu.Unlock()
			sess.Close()
			return nil, err
		}
		st, txr, err := buildFollowerStack(fs, m)
		if err != nil {
			fs.Close()
			rn.mu.Unlock()
			sess.Close()
			return nil, err
		}
		rn.m, rn.fs, rn.st, rn.txr = m, fs, st, txr
		rn.txrA.Store(txr)
		node := rn.node
		rn.mu.Unlock()
		// Retract the published position before the swap: the old value is
		// an old-timeline LSN, and once Rebind makes the new term visible a
		// numerically-high stale LSN could satisfy a new-term barrier the
		// clone hasn't actually caught up to. Zero forces STALE (safe)
		// until the clone's own position is published below.
		rn.pubLSN.Store(0)
		if node != nil {
			// Swap the fresh stack and the session's term in together under
			// the node's exclusive lock — in-flight readers on the old
			// engine drain first, and a reader that sees the new term is
			// guaranteed the new engine.
			node.Rebind(st.conc, info.Term)
		}
		// Published position advances only now that readers reach the new
		// engine; earlier, a barrier could pass against the clone's LSN
		// while queries still ran on the old (older) stack.
		rn.pubLSN.Store(txr.AppliedLSN())
		if oldSt != nil {
			oldSt.conc.Close()
		}
		if oldFs != nil {
			oldFs.Close()
		}
		return sess, nil
	}
	sess.Close()
	return nil, fmt.Errorf("unexpected session kind %v", sess.Kind())
}

// teardownLocked drops the current stack and store handles (rn.mu held).
// The engine is closed but its SnapStore is abandoned, not Closed:
// Closing it would close the FileStore, which is closed here explicitly
// exactly once.
func (rn *replicaNode) teardownLocked() {
	rn.txrA.Store(nil)
	if rn.st != nil {
		rn.st.conc.Close()
		rn.st = nil
	}
	rn.txr = nil
	if rn.fs != nil {
		rn.fs.Close()
		rn.fs = nil
	}
	rn.m = nil
}

// loop keeps a session running: applying records (one published epoch
// each), acking, reconnecting with backoff when the link drops, and
// parking when promotion or shutdown stops it.
func (rn *replicaNode) loop(sess *repl.Session) {
	defer close(rn.loopDone)
	backoff := 250 * time.Millisecond
	for {
		if sess != nil {
			applied := uint64(0)
			if t := rn.txrA.Load(); t != nil {
				applied = t.AppliedLSN()
			}
			f := repl.NewFollower(sess, applied)
			rn.follower.Store(f)
			err := f.Run(sess, repl.FollowerCallbacks{Apply: rn.applyRecord, Logf: rn.logf})
			sess.Close()
			rn.follower.Store(nil)
			if rn.parked() {
				return
			}
			if err != nil {
				rn.logf("replication stream ended: %v", err)
			}
			backoff = 250 * time.Millisecond
		}
		time.Sleep(backoff)
		if backoff < 4*time.Second {
			backoff *= 2
		}
		if rn.parked() {
			return
		}
		var err error
		sess, err = rn.connect()
		if err != nil {
			rn.logf("reconnect to %s: %v", rn.primary, err)
			sess = nil
		}
	}
}

func (rn *replicaNode) parked() bool {
	rn.mu.Lock()
	defer rn.mu.Unlock()
	return rn.stopping || rn.promoted
}

// applyRecord replays one shipped record and publishes it as an epoch so
// concurrent readers roll forward. The published position (what the read
// barrier checks) advances only after the epoch commit — a reader must
// never pass the barrier for an LSN whose effects it cannot yet see.
func (rn *replicaNode) applyRecord(rec []byte) (uint64, error) {
	rn.mu.Lock()
	txr, st := rn.txr, rn.st
	rn.mu.Unlock()
	if txr == nil {
		return 0, fmt.Errorf("no replica stack")
	}
	if _, err := txr.ApplyRecord(rec); err != nil {
		return 0, err
	}
	if _, err := st.snap.Commit(); err != nil {
		return 0, err
	}
	lsn := txr.AppliedLSN()
	rn.pubLSN.Store(lsn)
	return lsn, nil
}

// stopFollower halts the apply loop and waits for it to park. After it
// returns, no record is in flight: the replica's durable position is
// final (the loop never restarts after promote/shutdown).
func (rn *replicaNode) stopFollower() {
	if f := rn.follower.Load(); f != nil {
		f.Stop()
	}
	<-rn.loopDone
}

// promote turns this replica into the primary: drain the apply queue,
// persist the bumped term BEFORE accepting any write, rebuild a writable
// stack over the same file, swap it in under the node's exclusive lock,
// reclaim the pages the old primary freed but never told us about, and
// finally open the shipper for downstream replicas. Idempotent: a second
// caller waits for the first attempt and shares its outcome.
func (rn *replicaNode) promote() (uint64, uint64, error) {
	rn.mu.Lock()
	if rn.promoted {
		done := rn.promDone
		rn.mu.Unlock()
		<-done
		return rn.promTerm, rn.promLSN, rn.promErr
	}
	if rn.stopping {
		rn.mu.Unlock()
		return 0, 0, fmt.Errorf("shutting down")
	}
	if rn.st == nil || rn.fs == nil {
		rn.mu.Unlock()
		return 0, 0, fmt.Errorf("no local store to promote")
	}
	rn.promoted = true
	done := make(chan struct{})
	rn.promDone = done
	rn.mu.Unlock()

	term, lsn, err := rn.doPromote()
	rn.promTerm, rn.promLSN, rn.promErr = term, lsn, err
	close(done)
	return term, lsn, err
}

func (rn *replicaNode) doPromote() (uint64, uint64, error) {
	rn.stopFollower()

	rn.mu.Lock()
	defer rn.mu.Unlock()

	newTerm := rn.m.Term + 1
	rn.logf("promoting to primary: term %d -> %d at lsn %d", rn.m.Term, newTerm, rn.txr.AppliedLSN())

	// Fencing invariant: the term is durable before the first write can
	// be accepted under it.
	rn.m.Term = newTerm
	rn.m.Role = "primary"
	if err := writeManifest(rn.storePath, rn.m); err != nil {
		return 0, 0, fmt.Errorf("persist term %d: %w", newTerm, err)
	}

	// Writable stack over the same file. The apply loop is drained, so
	// anchors are exact and OpenTxStore's recovery is a no-op.
	tx, err := eio.OpenTxStore(rn.fs, rn.m.Anchor)
	if err != nil {
		return 0, 0, fmt.Errorf("promote: reopen tx layer: %w", err)
	}
	snap := eio.NewSnapStore(tx, 0)
	tracer := eio.NewTraceStore(snap)
	idx, err := core.OpenThreeSided(tracer, rn.m.Hdr)
	if err != nil {
		return 0, 0, fmt.Errorf("promote: reopen tree: %w", err)
	}
	newStack, err := finish(snap, tracer, idx, tx, rn.m)
	if err != nil {
		return 0, 0, fmt.Errorf("promote: assemble stack: %w", err)
	}

	// Swap under the node's exclusive lock: in-flight readers on the old
	// engine drain before it is closed. The old stack's SnapStore is
	// abandoned un-Closed (Closing it would close the FileStore the new
	// stack now owns).
	rn.txrA.Store(nil)
	old := rn.node.Promote(newStack.conc, newTerm)
	rn.st = newStack
	rn.txr = nil
	old.Close()

	// Reclaim what the old primary freed without telling us (frees are
	// never shipped). Under the new engine's barrier the store is
	// quiescent and no reader is pinned below the current epoch yet.
	if rn.scrubBoot {
		err := newStack.conc.Barrier(func() error {
			rep, err := bootScrub(tx, rn.m.Hdr)
			if err != nil {
				return err
			}
			if len(rep.Leaked) > 0 {
				rn.logf("promotion scrub: reclaimed %d replica-leaked pages", len(rep.Leaked))
			}
			return nil
		})
		if err != nil {
			return 0, 0, fmt.Errorf("promotion scrub: %w", err)
		}
	}

	if rn.shipper != nil {
		tx.SetCommitHook(rn.shipper.Commit)
		if rn.syncN > 0 {
			syncN, syncT := rn.syncN, rn.syncT
			newStack.conc.SetCommitGate(func() error {
				return rn.shipper.WaitAcked(tx.AppliedLSN(), syncN, syncT)
			})
		}
		rn.shipper.Rebind(rn.m.PageSize, uint64(rn.m.Anchor), uint64(rn.m.Hdr),
			tx.AppliedLSN, cutSnapshot(newStack))
		rn.shipper.SetPrimary(newTerm)
	}
	rn.logf("promoted: primary at term %d lsn %d", newTerm, tx.AppliedLSN())
	return newTerm, tx.AppliedLSN(), nil
}

// manifestSnapshot returns a copy of the current manifest — the apply
// loop may replace rn.m on a re-clone, so callers outside rn.mu read
// through this.
func (rn *replicaNode) manifestSnapshot() manifest {
	rn.mu.Lock()
	defer rn.mu.Unlock()
	return *rn.m
}

// replInfo is the STATS callback.
func (rn *replicaNode) replInfo() server.ReplInfo {
	role, term := rn.node.Role()
	info := server.ReplInfo{Role: role, Term: term, AppliedLSN: rn.node.AppliedLSN()}
	if f := rn.follower.Load(); f != nil {
		info.PrimaryLSN = f.PrimaryLSN()
		info.StalenessMs = float64(time.Since(f.LastContact()).Microseconds()) / 1e3
	}
	if rn.shipper != nil {
		info.Replicas = len(rn.shipper.Replicas())
	}
	return info
}

// drain shuts the replica down. A follower's store legitimately holds
// pages its primary freed (frees are not shipped), so unlike a primary
// it does not fail the exit on leaks — promotion is where they are
// reclaimed. A promoted node drains exactly like a primary.
func (rn *replicaNode) drain() (int, error) {
	rn.mu.Lock()
	rn.stopping = true
	promoted := rn.promoted
	done := rn.promDone
	rn.mu.Unlock()
	if promoted {
		<-done // an in-flight promotion finishes before teardown starts
	} else {
		rn.stopFollower()
	}
	if rn.shipper != nil {
		rn.shipper.Close()
	}

	rn.mu.Lock()
	defer rn.mu.Unlock()
	if rn.st == nil {
		return 0, nil
	}
	if promoted {
		st := rn.st
		rn.st, rn.fs, rn.txr = nil, nil, nil
		return st.drainClean()
	}
	rn.txrA.Store(nil)
	rn.st.conc.Close()
	if _, err := rn.st.snap.Commit(); err != nil {
		return 0, fmt.Errorf("final commit: %w", err)
	}
	if err := rn.st.snap.Close(); err != nil { // closes the FileStore too
		return 0, fmt.Errorf("close: %w", err)
	}
	rn.st, rn.fs, rn.txr = nil, nil, nil
	return 0, nil
}
