package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rangesearch/internal/eio"
	"rangesearch/internal/geom"
)

// writeStoreWithManifest creates a real durable store (so buildFile takes
// the reopen path), then lets the test replace its manifest.
func writeStoreWithManifest(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "points.db")
	st, err := buildFile(path, 4096, true, eio.DefaultWALPages, 0, 0, true)
	if err != nil {
		t.Fatalf("create store: %v", err)
	}
	if leaked, err := st.drainClean(); err != nil || leaked != 0 {
		t.Fatalf("drainClean: leaked=%d err=%v", leaked, err)
	}
	return path
}

func reopenWantErr(t *testing.T, path, wantSubstr string) {
	t.Helper()
	st, err := buildFile(path, 4096, true, eio.DefaultWALPages, 0, 0, true)
	if err == nil {
		st.drainClean()
		t.Fatalf("reopen with bad manifest succeeded, want error containing %q", wantSubstr)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("reopen error = %q, want it to mention %q", err, wantSubstr)
	}
}

func TestManifestCorruptJSON(t *testing.T) {
	path := writeStoreWithManifest(t)
	if err := os.WriteFile(manifestPath(path), []byte("{\"page_size\": 4096, garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	reopenWantErr(t, path, "not valid JSON")
}

func TestManifestTruncated(t *testing.T) {
	path := writeStoreWithManifest(t)
	raw, err := os.ReadFile(manifestPath(path))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(manifestPath(path), raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	reopenWantErr(t, path, "manifest")
}

func TestManifestEmptyObject(t *testing.T) {
	// "{}" is valid JSON but a zero-value manifest: without validation it
	// would misopen the store at page 0.
	path := writeStoreWithManifest(t)
	if err := os.WriteFile(manifestPath(path), []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	reopenWantErr(t, path, "page_size")
}

func TestManifestMissingHdr(t *testing.T) {
	path := writeStoreWithManifest(t)
	if err := os.WriteFile(manifestPath(path), []byte(`{"page_size":4096,"durable":true,"anchor":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	reopenWantErr(t, path, "hdr")
}

func TestManifestDurableWithoutAnchor(t *testing.T) {
	path := writeStoreWithManifest(t)
	if err := os.WriteFile(manifestPath(path), []byte(`{"page_size":4096,"durable":true,"hdr":12}`), 0o644); err != nil {
		t.Fatal(err)
	}
	reopenWantErr(t, path, "anchor")
}

func TestManifestMissing(t *testing.T) {
	path := writeStoreWithManifest(t)
	if err := os.Remove(manifestPath(path)); err != nil {
		t.Fatal(err)
	}
	reopenWantErr(t, path, "manifest is unreadable")
}

// TestReopenRoundTrip pins the happy path the validation must not break:
// create, write, drain, reopen, read back.
func TestReopenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "points.db")
	st, err := buildFile(path, 4096, true, eio.DefaultWALPages, 0, 0, true)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := st.conc.Insert(geom.Point{X: 1, Y: 2}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if leaked, err := st.drainClean(); err != nil || leaked != 0 {
		t.Fatalf("drainClean: leaked=%d err=%v", leaked, err)
	}

	st2, err := buildFile(path, 4096, true, eio.DefaultWALPages, 0, 0, true)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	pts, err := st2.conc.Query(nil, geom.Rect{XLo: 0, XHi: 10, YLo: 0, YHi: 10})
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(pts) != 1 || pts[0] != (geom.Point{X: 1, Y: 2}) {
		t.Fatalf("reopened store returned %v, want [{1 2}]", pts)
	}
	if leaked, err := st2.drainClean(); err != nil || leaked != 0 {
		t.Fatalf("second drainClean: leaked=%d err=%v", leaked, err)
	}
}
