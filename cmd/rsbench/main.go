// Command rsbench runs the experiment suite that reproduces every
// quantitative claim of Arge, Samoladas & Vitter (PODS 1999) and prints
// one table per claim (the experiment index lives in DESIGN.md, the
// recorded results in EXPERIMENTS.md).
//
// Usage:
//
//	rsbench                 # run every experiment at full size
//	rsbench -exp e7,e8      # run selected experiments
//	rsbench -quick          # smaller instances (seconds instead of minutes)
//	rsbench -list           # list experiments and the claims they test
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rangesearch/internal/bench"
)

func main() {
	var (
		expFlag   = flag.String("exp", "", "comma-separated experiment names (default: all)")
		quickFlag = flag.Bool("quick", false, "run smaller instances")
		listFlag  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	exps := bench.All()
	if *listFlag {
		for _, e := range exps {
			fmt.Printf("%-5s %s\n", e.Name, e.Claim)
		}
		return
	}

	want := map[string]bool{}
	if *expFlag != "" {
		for _, name := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(strings.ToLower(name))] = true
		}
	}

	ran := 0
	for _, e := range exps {
		if len(want) > 0 && !want[e.Name] {
			continue
		}
		ran++
		start := time.Now()
		tables, err := e.Run(*quickFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rsbench: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t.Render())
		}
		fmt.Printf("(%s finished in %v)\n\n", e.Name, time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "rsbench: no experiment matches -exp=%q (try -list)\n", *expFlag)
		os.Exit(2)
	}
}
