// Command rsbench runs the experiment suite that reproduces every
// quantitative claim of Arge, Samoladas & Vitter (PODS 1999) and prints
// one table per claim (the experiment index lives in DESIGN.md, the
// recorded results in EXPERIMENTS.md).
//
// Usage:
//
//	rsbench                     # run every experiment at full size
//	rsbench -exp e7,e8          # run selected experiments
//	rsbench -quick              # smaller instances (seconds instead of minutes)
//	rsbench -list               # list experiments and the claims they test
//	rsbench -json -outdir out   # also write machine-readable BENCH_<exp>.json
//	rsbench -metrics :6060      # serve expvar + pprof while running
//	rsbench -bound              # run the e14 bound check and fail on violation
//	rsbench -exp concurrent -workers 8   # scale the serving-layer experiment to 8 goroutines
//
// Exit codes: 0 success; 1 if any experiment errored (the rest of the
// suite still runs) or storage of a snapshot failed; 2 usage; 3 if -bound
// found a theorem-overhead violation.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rangesearch/internal/bench"
	"rangesearch/internal/obs"
)

func main() {
	var (
		expFlag     = flag.String("exp", "", "comma-separated experiment names (default: all)")
		quickFlag   = flag.Bool("quick", false, "run smaller instances")
		listFlag    = flag.Bool("list", false, "list experiments and exit")
		jsonFlag    = flag.Bool("json", false, "write a BENCH_<exp>.json snapshot per experiment")
		outdirFlag  = flag.String("outdir", ".", "directory for -json snapshots")
		metricsFlag = flag.String("metrics", "", "serve expvar and pprof on this address (e.g. :6060) while running")
		boundFlag   = flag.Bool("bound", false, "run the bound check (e14) and exit 3 if p95 overhead exceeds the limits")
		boundQP95   = flag.Float64("bound-query-p95", bench.CIQueryP95Limit, "with -bound: max allowed p95 query overhead")
		boundUP95   = flag.Float64("bound-update-p95", bench.CIUpdateP95Limit, "with -bound: max allowed p95 update overhead")
		workersFlag = flag.Int("workers", bench.MaxWorkers, "max goroutines the concurrent experiment scales to")
	)
	flag.Parse()
	if *workersFlag < 1 {
		fmt.Fprintln(os.Stderr, "rsbench: -workers must be >= 1")
		os.Exit(2)
	}
	bench.MaxWorkers = *workersFlag

	exps := bench.All()
	if *listFlag {
		for _, e := range exps {
			fmt.Printf("%-5s %s\n", e.Name, e.Claim)
		}
		return
	}

	if *metricsFlag != "" {
		ms, err := obs.ServeMetrics(*metricsFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rsbench: metrics server: %v\n", err)
			os.Exit(1)
		}
		defer ms.Close()
		fmt.Printf("metrics: expvar at http://%s/debug/vars, pprof at http://%s/debug/pprof/\n\n", ms.Addr(), ms.Addr())
	}
	// Progress is published whether or not -metrics is set, so an
	// embedded expvar scrape (or a test) can watch a run.
	progress := expvar.NewMap("rangesearch.bench")

	if *boundFlag {
		os.Exit(runBoundCheck(*quickFlag, *jsonFlag, *outdirFlag, *boundQP95, *boundUP95))
	}

	want := map[string]bool{}
	if *expFlag != "" {
		for _, name := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(strings.ToLower(name))] = true
		}
	}

	ran := 0
	var failed []string
	for _, e := range exps {
		if len(want) > 0 && !want[e.Name] {
			continue
		}
		ran++
		progress.Set("current", stringVar(e.Name))
		start := time.Now()
		tables, err := e.Run(*quickFlag)
		dur := time.Since(start)
		if err != nil {
			// Report and keep going: one broken experiment must not hide
			// the results (or further breakage) of the rest of the suite.
			// The failure still fails the run via the exit code.
			fmt.Fprintf(os.Stderr, "rsbench: %s: %v\n", e.Name, err)
			failed = append(failed, e.Name)
			continue
		}
		for _, t := range tables {
			fmt.Println(t.Render())
		}
		fmt.Printf("(%s finished in %v)\n\n", e.Name, dur.Round(time.Millisecond))
		if *jsonFlag {
			snap := bench.NewSnapshot(e.Name, e.Claim, *quickFlag, dur, tables, nil)
			path, err := bench.WriteSnapshot(*outdirFlag, snap)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rsbench: %s: write snapshot: %v\n", e.Name, err)
				failed = append(failed, e.Name+" (snapshot)")
				continue
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "rsbench: no experiment matches -exp=%q (try -list)\n", *expFlag)
		os.Exit(2)
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "rsbench: %d of %d experiments failed: %s\n", len(failed), ran, strings.Join(failed, ", "))
		os.Exit(1)
	}
}

// runBoundCheck runs e14 with thresholds and returns the process exit
// code.
func runBoundCheck(quick, writeJSON bool, outdir string, qp95, up95 float64) int {
	start := time.Now()
	tables, reports, err := bench.BoundCheck(quick)
	dur := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rsbench: bound check: %v\n", err)
		return 1
	}
	for _, t := range tables {
		fmt.Println(t.Render())
	}
	if writeJSON {
		snap := bench.NewSnapshot("e14", "bound check: per-op overhead vs Thms 6-7 allowances", quick, dur, tables, reports)
		path, err := bench.WriteSnapshot(outdir, snap)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rsbench: write snapshot: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s\n", path)
	}
	code := 0
	for _, rep := range reports {
		if err := rep.Exceeds(qp95, up95); err != nil {
			fmt.Fprintf(os.Stderr, "rsbench: BOUND VIOLATION: %v\n", err)
			code = 3
		} else {
			fmt.Printf("bound check OK: %s (query p95 %.2f <= %.2f, update p95 %.2f/%.2f <= %.2f)\n",
				rep.Name, rep.Query.P95, qp95, rep.Insert.P95, rep.Delete.P95, up95)
		}
	}
	fmt.Printf("(bound check finished in %v)\n", dur.Round(time.Millisecond))
	return code
}

// stringVar adapts a plain string to expvar.Var.
type stringVar string

func (s stringVar) String() string { return fmt.Sprintf("%q", string(s)) }
