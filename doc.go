// Package rangesearch is a from-scratch Go reproduction of
//
//	Lars Arge, Vasilis Samoladas, Jeffrey Scott Vitter:
//	"On Two-Dimensional Indexability and Optimal Range Search Indexing",
//	PODS 1999.
//
// The library lives under internal/: the external-memory substrate (eio),
// the indexability framework and both indexing-scheme constructions
// (indexability, sweep, hier), the external priority search tree and its
// building blocks (smallstruct, wbtree, epst), interval management
// (interval), the 4-sided structure (range4), baselines (baseline), the
// observability layer (obs: I/O tracing, per-operation metrics and the
// empirical Theorem 6/7 bound checker), and the experiment harness
// (bench). See README.md, DESIGN.md and EXPERIMENTS.md.
//
// The benchmarks in bench_test.go regenerate every experiment table; run
//
//	go test -bench=. -benchmem .
//
// or the cmd/rsbench binary for the full-size tables.
package rangesearch
