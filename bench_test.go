package rangesearch

import (
	"fmt"
	"testing"

	"rangesearch/internal/bench"
	"rangesearch/internal/core"
	"rangesearch/internal/eio"
	"rangesearch/internal/epst"
	"rangesearch/internal/geom"
	"rangesearch/internal/interval"
	"rangesearch/internal/range4"
	"rangesearch/internal/smallstruct"
	"rangesearch/internal/wbtree"
)

// --- Experiment benchmarks: one target per table/claim in DESIGN.md. ---
// Each runs the corresponding experiment (in quick mode, so the benches
// finish in seconds); cmd/rsbench prints the full-size tables recorded in
// EXPERIMENTS.md.

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	var exp *bench.Experiment
	for _, e := range bench.All() {
		if e.Name == name {
			e := e
			exp = &e
			break
		}
	}
	if exp == nil {
		b.Fatalf("unknown experiment %q", name)
	}
	for i := 0; i < b.N; i++ {
		tables, err := exp.Run(true)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			for _, t := range tables {
				b.Log("\n" + t.Render())
			}
		}
	}
}

func BenchmarkE1FibonacciDensity(b *testing.B)   { benchExperiment(b, "e1") }
func BenchmarkE2LowerBoundTradeoff(b *testing.B) { benchExperiment(b, "e2") }
func BenchmarkE3Sweep3Sided(b *testing.B)        { benchExperiment(b, "e3") }
func BenchmarkE4Hier4Sided(b *testing.B)         { benchExperiment(b, "e4") }
func BenchmarkE5SmallStruct(b *testing.B)        { benchExperiment(b, "e5") }
func BenchmarkE6WBTree(b *testing.B)             { benchExperiment(b, "e6") }
func BenchmarkE7EPSTQuery(b *testing.B)          { benchExperiment(b, "e7") }
func BenchmarkE8EPSTUpdate(b *testing.B)         { benchExperiment(b, "e8") }
func BenchmarkE9IntervalStab(b *testing.B)       { benchExperiment(b, "e9") }
func BenchmarkE10Range4(b *testing.B)            { benchExperiment(b, "e10") }
func BenchmarkE11Baselines(b *testing.B)         { benchExperiment(b, "e11") }
func BenchmarkE12UpdateTail(b *testing.B)        { benchExperiment(b, "e12") }
func BenchmarkE13Ablation(b *testing.B)          { benchExperiment(b, "e13") }

// --- Operation-level micro-benchmarks with I/O metrics. ---

const (
	benchN        = 50_000
	benchPageSize = 1024 // B = 64
	benchDomain   = int64(benchN) * 4
)

func BenchmarkOpEPSTQuery3(b *testing.B) {
	store := eio.NewMemStore(benchPageSize)
	tr, err := epst.Build(store, epst.Options{}, bench.Uniform(1, benchN, benchDomain))
	if err != nil {
		b.Fatal(err)
	}
	queries := bench.Queries3(2, 256, benchDomain, 0.05)
	var buf []geom.Point
	store.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		buf, err = tr.Query3(buf, queries[i%len(queries)])
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(store.Stats().IOs())/float64(b.N), "ios/op")
}

func BenchmarkOpEPSTInsertDelete(b *testing.B) {
	store := eio.NewMemStore(benchPageSize)
	pts := bench.Uniform(3, benchN, benchDomain)
	tr, err := epst.Build(store, epst.Options{}, pts)
	if err != nil {
		b.Fatal(err)
	}
	store.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pts[i%len(pts)]
		if _, err := tr.Delete(p); err != nil {
			b.Fatal(err)
		}
		if err := tr.Insert(p); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(store.Stats().IOs())/float64(2*b.N), "ios/op")
}

func BenchmarkOpRange4Query(b *testing.B) {
	store := eio.NewMemStore(benchPageSize)
	tr, err := range4.Build(store, range4.Options{}, bench.Uniform(5, benchN/2, benchDomain))
	if err != nil {
		b.Fatal(err)
	}
	queries := bench.Queries4(6, 256, benchDomain, 0.05, 0.05)
	var buf []geom.Point
	store.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		buf, err = tr.Query4(buf, queries[i%len(queries)])
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(store.Stats().IOs())/float64(b.N), "ios/op")
}

func BenchmarkOpWBTreeInsert(b *testing.B) {
	store := eio.NewMemStore(4096)
	tr, err := wbtree.Create(store, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	pts := bench.Uniform(7, 1<<20, 1<<40)
	store.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(pts[i%len(pts)]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(store.Stats().IOs())/float64(b.N), "ios/op")
}

func BenchmarkOpSmallStructQuery(b *testing.B) {
	store := eio.NewMemStore(benchPageSize) // B = 64
	pts := bench.Uniform(9, 64*64, 1<<20)
	s, err := smallstruct.Create(store, 2, pts)
	if err != nil {
		b.Fatal(err)
	}
	queries := bench.Queries3(10, 256, 1<<20, 0.1)
	var buf []geom.Point
	store.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		buf, err = s.Query3(buf, queries[i%len(queries)])
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(store.Stats().IOs())/float64(b.N), "ios/op")
}

func BenchmarkOpIntervalStab(b *testing.B) {
	store := eio.NewMemStore(benchPageSize)
	pts := bench.Diagonal(11, benchN/2, benchDomain)
	ivs := make([]geom.Interval, len(pts))
	for i, p := range pts {
		ivs[i] = geom.Interval{Lo: p.X, Hi: p.Y}
	}
	s, err := interval.Build(store, epst.Options{}, ivs)
	if err != nil {
		b.Fatal(err)
	}
	var buf []geom.Interval
	store.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		buf, err = s.Stab(buf, int64(i*9973)%benchDomain)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(store.Stats().IOs())/float64(b.N), "ios/op")
}

// BenchmarkOpBufferPool shows the effect of an M-page buffer pool on query
// I/Os — the practical deployment mode (ablation from DESIGN.md).
func BenchmarkOpBufferPool(b *testing.B) {
	for _, capacity := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("M=%d", capacity), func(b *testing.B) {
			backing := eio.NewMemStore(benchPageSize)
			pool := eio.NewPool(backing, capacity)
			tr, err := epst.Build(pool, epst.Options{}, bench.Uniform(13, benchN/2, benchDomain))
			if err != nil {
				b.Fatal(err)
			}
			queries := bench.Queries3(14, 256, benchDomain, 0.05)
			var buf []geom.Point
			backing.ResetStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = buf[:0]
				buf, err = tr.Query3(buf, queries[i%len(queries)])
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(backing.Stats().IOs())/float64(b.N), "ios/op")
		})
	}
}

// Compile-time use of the facade so the root package depends on the whole
// public surface.
var _ core.Index = (*core.ThreeSided)(nil)
