module rangesearch

go 1.22
