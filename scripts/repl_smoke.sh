#!/usr/bin/env sh
# Replicated serving smoke test: boot a primary with two log-shipping
# replicas, drive a verified workload whose reads fan out across the
# replicas under a (term, LSN) read barrier, then SIGKILL the primary,
# promote one replica with SIGUSR1, re-point the survivor at it, and
# re-verify under load. Asserts: both load phases finish with zero
# protocol/consistency errors and real replica reads, the surviving
# nodes drain clean, their WAL layers decode healthy, and the promoted
# store's manifest carries role=primary term=1. CI runs this; `make
# repl-smoke` runs it locally. `make chaos-repl` is the heavyweight
# kill-loop version of the same claims.
set -eu

GO=${GO:-go}
WORKDIR=$(mktemp -d /tmp/repl-smoke.XXXXXX)
P_PID=""
R1_PID=""
R2_PID=""
cleanup() {
    for pid in "$P_PID" "$R1_PID" "$R2_PID"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

DURATION=${DURATION:-3s}
WORKERS=${WORKERS:-4}
P_ADDR=127.0.0.1:19035
P_REPL=127.0.0.1:19135
R1_ADDR=127.0.0.1:19036
R1_REPL=127.0.0.1:19136
R2_ADDR=127.0.0.1:19037
R2_REPL=127.0.0.1:19137

echo "== build =="
$GO build -o "$WORKDIR/bin/" ./cmd/rsserve ./cmd/rsload ./cmd/rsinspect

# wait_up ADDR LOG: poll until an rsload ping-sized run succeeds.
wait_up() {
    i=0
    until "$WORKDIR/bin/rsload" -addr "$1" -workers 1 -duration 100ms >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 100 ]; then
            echo "node on $1 never came up:" >&2
            cat "$2" >&2
            exit 1
        fi
        sleep 0.1
    done
}

echo "== boot primary ($P_ADDR, shipping on $P_REPL, sync=2) =="
"$WORKDIR/bin/rsserve" -store "$WORKDIR/p.db" -addr "$P_ADDR" \
    -repl-listen "$P_REPL" -repl-sync 2 >"$WORKDIR/p.log" 2>&1 &
P_PID=$!
wait_up "$P_ADDR" "$WORKDIR/p.log"

echo "== boot replicas =="
"$WORKDIR/bin/rsserve" -store "$WORKDIR/r1.db" -addr "$R1_ADDR" \
    -repl-listen "$R1_REPL" -repl-sync 1 \
    -replicate-from "$P_REPL" >"$WORKDIR/r1.log" 2>&1 &
R1_PID=$!
"$WORKDIR/bin/rsserve" -store "$WORKDIR/r2.db" -addr "$R2_ADDR" \
    -repl-listen "$R2_REPL" -repl-sync 1 \
    -replicate-from "$P_REPL" >"$WORKDIR/r2.log" 2>&1 &
R2_PID=$!
wait_up "$R1_ADDR" "$WORKDIR/r1.log"
wait_up "$R2_ADDR" "$WORKDIR/r2.log"

echo "== phase 1: verified load, reads fanned across both replicas =="
"$WORKDIR/bin/rsload" -addr "$P_ADDR" -workers "$WORKERS" -duration "$DURATION" \
    -pipeline 8 -verify -resilient \
    -read-addrs "$R1_ADDR,$R2_ADDR" \
    -failover-addrs "$R1_ADDR,$R2_ADDR" \
    -json "$WORKDIR/load1.json"
grep -q '"replica_reads": *[1-9]' "$WORKDIR/load1.json" || {
    echo "phase 1 recorded no replica reads" >&2
    exit 1
}

echo "== failover: SIGKILL primary, SIGUSR1-promote r1 =="
kill -KILL "$P_PID" 2>/dev/null || true
wait "$P_PID" 2>/dev/null || true
P_PID=""
kill -USR1 "$R1_PID"
# A liveness probe can't tell a replica from a primary (replicas shed
# writes as NOTPRIMARY without failing the probe), so wait for the
# server's own promotion log line.
i=0
until grep -q 'promote: primary at term' "$WORKDIR/r1.log"; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "r1 never promoted:" >&2
        cat "$WORKDIR/r1.log" >&2
        exit 1
    fi
    sleep 0.1
done

# Re-point the surviving replica at the new primary: drain it cleanly
# and restart it replicating from r1's shipping port (the handshake
# re-clones across the term bump and adopts term 1).
kill -TERM "$R2_PID"
wait "$R2_PID" || { echo "r2 drain failed" >&2; cat "$WORKDIR/r2.log" >&2; exit 1; }
"$WORKDIR/bin/rsserve" -store "$WORKDIR/r2.db" -addr "$R2_ADDR" \
    -repl-listen "$R2_REPL" -repl-sync 1 \
    -replicate-from "$R1_REPL" >>"$WORKDIR/r2.log" 2>&1 &
R2_PID=$!
wait_up "$R2_ADDR" "$WORKDIR/r2.log"

echo "== phase 2: verified load against the promoted primary =="
"$WORKDIR/bin/rsload" -addr "$R1_ADDR" -workers "$WORKERS" -duration "$DURATION" \
    -pipeline 8 -verify -resilient \
    -read-addrs "$R2_ADDR" \
    -json "$WORKDIR/load2.json"

echo "== drain survivors =="
kill -TERM "$R1_PID"
wait "$R1_PID" || { echo "promoted primary drain failed" >&2; cat "$WORKDIR/r1.log" >&2; exit 1; }
R1_PID=""
kill -TERM "$R2_PID"
wait "$R2_PID" || { echo "r2 drain failed" >&2; cat "$WORKDIR/r2.log" >&2; exit 1; }
R2_PID=""

echo "== post-mortem: WAL layer + checksums on the survivors =="
# The SIGKILLed ex-primary may legitimately hold a torn record (that is
# what recovery discards), so only the cleanly drained nodes are gated.
"$WORKDIR/bin/rsinspect" wal -store "$WORKDIR/r1.db" -json | tee "$WORKDIR/wal-r1.json"
grep -q '"role": *"primary"' "$WORKDIR/wal-r1.json" || {
    echo "promoted store is not a primary" >&2
    exit 1
}
grep -q '"term": *1' "$WORKDIR/wal-r1.json" || {
    echo "promoted store did not adopt term 1" >&2
    exit 1
}
"$WORKDIR/bin/rsinspect" wal -store "$WORKDIR/r2.db" >/dev/null
"$WORKDIR/bin/rsinspect" verify -store "$WORKDIR/r1.db"
"$WORKDIR/bin/rsinspect" verify -store "$WORKDIR/r2.db"

# Keep the per-phase latency/staleness reports where CI can pick them
# up as artifacts.
if [ -n "${ARTIFACT_DIR:-}" ]; then
    mkdir -p "$ARTIFACT_DIR"
    cp "$WORKDIR/load1.json" "$ARTIFACT_DIR/repl-load1.json"
    cp "$WORKDIR/load2.json" "$ARTIFACT_DIR/repl-load2.json"
    cp "$WORKDIR/wal-r1.json" "$ARTIFACT_DIR/repl-wal-r1.json"
fi

echo "== repl smoke OK =="
