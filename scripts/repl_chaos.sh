#!/usr/bin/env sh
# Replicated kill-and-recover chaos run: rschaos spawns a primary plus
# REPLICAS log-shipping replicas on fresh durable stores and drives
# verified resilient load with replica read fan-out while every cycle
# kills a replica, degrades the replication link, and SIGKILLs the
# primary followed by an explicit promotion. Acceptance: zero lost or
# duplicated acked writes, final term == promotions, the fleet
# converges within the staleness budget, and every node's store reopens
# scrub-clean with the primary's point count. `make chaos-repl` runs
# this; CI runs it with a smaller cycle count.
set -eu

GO=${GO:-go}
WORKDIR=$(mktemp -d /tmp/replchaos.XXXXXX)
trap 'rm -rf "$WORKDIR"' EXIT

REPLICAS=${REPLICAS:-2}
CYCLES=${CYCLES:-5}
PERIOD=${PERIOD:-700ms}
WORKERS=${WORKERS:-4}
SEED=${SEED:-1}
JSON_OUT=${JSON_OUT:-$WORKDIR/chaos-repl.json}

echo "== build =="
$GO build -o "$WORKDIR/bin/" ./cmd/rsserve ./cmd/rschaos

echo "== chaos-repl: $CYCLES cycles (replica kill + link fault + primary kill/promote), $REPLICAS replicas =="
"$WORKDIR/bin/rschaos" \
    -server "$WORKDIR/bin/rsserve" \
    -dir "$WORKDIR/fleet" -replicas "$REPLICAS" \
    -cycles "$CYCLES" -period "$PERIOD" -workers "$WORKERS" -seed "$SEED" \
    -json "$JSON_OUT"

# Keep the report where CI can pick it up as an artifact.
if [ -n "${ARTIFACT_DIR:-}" ]; then
    mkdir -p "$ARTIFACT_DIR"
    cp "$JSON_OUT" "$ARTIFACT_DIR/chaos-repl.json"
fi

echo "== chaos-repl OK =="
