#!/usr/bin/env sh
# Write-optimized mode smoke test, end to end over the network: boot
# rsserve -write-buffer on a fresh durable store, drive a verified
# write-heavy zipfian burst (flush thresholds set high so every ack
# lives only in the delta buffer + sidecar journal), SIGKILL the server
# mid-state, and assert the restart recovers every acknowledged write by
# journal replay. A second verified burst runs against the recovered
# server, /metrics must carry the rangesearch_wbuf_* series, the SIGTERM
# drain must fold the buffer and exit clean, the journal must end
# truncated, and an independent rsinspect pass must find clean checksums
# and zero leaked pages. CI runs this; `make writeopt-smoke` runs it
# locally.
set -eu

GO=${GO:-go}
WORKDIR=$(mktemp -d /tmp/rsserve-writeopt.XXXXXX)
trap 'rm -rf "$WORKDIR"' EXIT

STORE="$WORKDIR/writeopt.db"
JOURNAL="$STORE.wbuf"
ADDR=${ADDR:-127.0.0.1:9155}
METRICS_ADDR=${METRICS_ADDR:-127.0.0.1:9156}
DURATION=${DURATION:-2s}
WORKERS=${WORKERS:-6}
# Thresholds far above what the bursts write: no size/age flush may race
# the kill, so the journal is guaranteed non-empty when SIGKILL lands.
BUF_OPS=${BUF_OPS:-200000}
BUF_AGE=${BUF_AGE:-10m}

echo "== build =="
$GO build -o "$WORKDIR/bin/" ./cmd/rsserve ./cmd/rsload ./cmd/rsinspect

boot() {
    "$WORKDIR/bin/rsserve" -store "$STORE" -addr "$ADDR" \
        -metrics "$METRICS_ADDR" \
        -write-buffer -write-buffer-ops "$BUF_OPS" -write-buffer-age "$BUF_AGE" \
        >"$1" 2>&1 &
    SERVER_PID=$!
    i=0
    until "$WORKDIR/bin/rsload" -addr "$ADDR" -workers 1 -duration 100ms >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 50 ]; then
            echo "rsserve never came up:" >&2
            cat "$1" >&2
            kill "$SERVER_PID" 2>/dev/null || true
            exit 1
        fi
        sleep 0.1
    done
}

echo "== boot rsserve -write-buffer ($STORE, flush at $BUF_OPS ops / $BUF_AGE) =="
boot "$WORKDIR/server1.log"

echo "== burst 1: verified write-heavy zipfian load =="
"$WORKDIR/bin/rsload" -addr "$ADDR" -workers "$WORKERS" -duration "$DURATION" \
    -pipeline 8 -read-frac 0.3 -dist zipf -theta 0.99 -seed 11 -verify \
    -json "$WORKDIR/load1.json"

# Every acked write of that burst is in the buffer, not the tree: the
# journal must be non-empty, and killing now erases the in-memory state.
[ -s "$JOURNAL" ] || { echo "journal $JOURNAL is empty before the kill" >&2; exit 1; }
echo "== SIGKILL with $(wc -c <"$JOURNAL") journal bytes outstanding =="
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true

echo "== reboot: journal replay must recover the acked writes =="
boot "$WORKDIR/server2.log"
grep -q 'write buffer: replayed' "$WORKDIR/server2.log" || {
    echo "restart did not replay the journal:" >&2
    cat "$WORKDIR/server2.log" >&2
    exit 1
}
grep 'write buffer: replayed' "$WORKDIR/server2.log"

echo "== burst 2: verified load against the recovered server =="
"$WORKDIR/bin/rsload" -addr "$ADDR" -workers "$WORKERS" -duration "$DURATION" \
    -pipeline 8 -read-frac 0.5 -dist zipf -theta 0.99 -seed 23 -verify \
    -json "$WORKDIR/load2.json"

echo "== scrape /metrics: write-buffer series must be live =="
"$WORKDIR/bin/rsinspect" prom -url "http://$METRICS_ADDR/metrics" -o "$WORKDIR/metrics.prom"
grep -q '^rangesearch_wbuf_serve' "$WORKDIR/metrics.prom" || {
    echo "/metrics carries no rangesearch_wbuf_serve samples" >&2
    exit 1
}

echo "== drain (SIGTERM): buffer folds into the base, journal truncates =="
kill -TERM "$SERVER_PID"
SERVER_STATUS=0
wait "$SERVER_PID" || SERVER_STATUS=$?
cat "$WORKDIR/server2.log"
if [ "$SERVER_STATUS" -ne 0 ]; then
    echo "rsserve exited $SERVER_STATUS (want 0: clean drain, buffer folded, no leaks)" >&2
    exit 1
fi
if [ -s "$JOURNAL" ]; then
    echo "journal still holds $(wc -c <"$JOURNAL") bytes after a clean drain" >&2
    exit 1
fi

echo "== independent post-mortem: checksums + leak scrub =="
"$WORKDIR/bin/rsinspect" verify -store "$STORE"
MANIFEST="$STORE.manifest.json"
hdr=$(sed -n 's/.*"hdr"[[:space:]]*:[[:space:]]*\([0-9][0-9]*\).*/\1/p' "$MANIFEST")
anchor=$(sed -n 's/.*"anchor"[[:space:]]*:[[:space:]]*\([0-9][0-9]*\).*/\1/p' "$MANIFEST")
[ -n "$hdr" ] || { echo "no hdr in $MANIFEST" >&2; exit 1; }
SCRUB="$WORKDIR/bin/rsinspect scrub -store $STORE -kind epst -hdr $hdr -dry -json"
if [ -n "$anchor" ]; then
    SCRUB="$SCRUB -anchor $anchor"
fi
$SCRUB | tee "$WORKDIR/scrub.json"
if grep -q '"leaked"' "$WORKDIR/scrub.json"; then
    echo "scrub reports leaked pages" >&2
    exit 1
fi

if [ -n "${ARTIFACT_DIR:-}" ]; then
    mkdir -p "$ARTIFACT_DIR"
    cp "$WORKDIR/load1.json" "$ARTIFACT_DIR/load1.json"
    cp "$WORKDIR/load2.json" "$ARTIFACT_DIR/load2.json"
    cp "$WORKDIR/server1.log" "$ARTIFACT_DIR/server1.log"
    cp "$WORKDIR/server2.log" "$ARTIFACT_DIR/server2.log"
    cp "$WORKDIR/metrics.prom" "$ARTIFACT_DIR/metrics.prom"
fi

echo "== writeopt smoke OK =="
