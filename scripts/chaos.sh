#!/usr/bin/env sh
# Kill-and-recover chaos run: rschaos spawns a real rsserve on a fresh
# durable store, drives verified resilient load through a fault-injecting
# proxy, and SIGKILLs/restarts the server CYCLES times. Acceptance: zero
# lost or duplicated writes across every crash, a clean SIGTERM drain,
# and a scrub-clean store file afterwards. `make chaos` runs this; CI
# runs a shorter chaos-smoke variant.
set -eu

GO=${GO:-go}
WORKDIR=$(mktemp -d /tmp/rschaos.XXXXXX)
trap 'rm -rf "$WORKDIR"' EXIT

CYCLES=${CYCLES:-10}
PERIOD=${PERIOD:-700ms}
WORKERS=${WORKERS:-4}
SEED=${SEED:-1}
JSON_OUT=${JSON_OUT:-$WORKDIR/chaos.json}

echo "== build =="
$GO build -o "$WORKDIR/bin/" ./cmd/rsserve ./cmd/rschaos

echo "== chaos: $CYCLES SIGKILL/restart cycles, ${PERIOD} apart =="
"$WORKDIR/bin/rschaos" \
    -server "$WORKDIR/bin/rsserve" \
    -store "$WORKDIR/chaos.db" \
    -cycles "$CYCLES" -period "$PERIOD" -workers "$WORKERS" -seed "$SEED" \
    -json "$JSON_OUT"

# Keep the report where CI can pick it up as an artifact.
if [ -n "${ARTIFACT_DIR:-}" ]; then
    mkdir -p "$ARTIFACT_DIR"
    cp "$JSON_OUT" "$ARTIFACT_DIR/chaos.json"
fi

echo "== chaos OK =="
