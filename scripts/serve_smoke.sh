#!/usr/bin/env sh
# End-to-end network smoke test: boot rsserve on a fresh durable file
# store with request tracing and the metrics endpoint live, drive a
# verified mixed workload with rsload (client-stamping TRACE envelopes),
# scrape /metrics and validate the Prometheus exposition, SIGTERM the
# server, and assert (a) zero protocol/consistency errors, (b) the drain
# exits clean, (c) an independent rsinspect pass finds every checksum
# valid and zero leaked pages, and (d) the span log is readable and
# non-empty. CI runs this; `make serve-smoke` runs it locally.
set -eu

GO=${GO:-go}
WORKDIR=$(mktemp -d /tmp/rsserve-smoke.XXXXXX)
trap 'rm -rf "$WORKDIR"' EXIT

STORE="$WORKDIR/smoke.db"
ADDR=${ADDR:-127.0.0.1:9135}
METRICS_ADDR=${METRICS_ADDR:-127.0.0.1:9136}
DURATION=${DURATION:-3s}
WORKERS=${WORKERS:-6}
JSON_OUT=${JSON_OUT:-$WORKDIR/load.json}
SPANS="$WORKDIR/spans.jsonl"

echo "== build =="
$GO build -o "$WORKDIR/bin/" ./cmd/rsserve ./cmd/rsload ./cmd/rsinspect

echo "== boot rsserve ($STORE, traced, metrics on $METRICS_ADDR) =="
"$WORKDIR/bin/rsserve" -store "$STORE" -addr "$ADDR" \
    -metrics "$METRICS_ADDR" -trace-sample 0.05 -slowlog 250ms \
    -spans "$SPANS" >"$WORKDIR/server.log" 2>&1 &
SERVER_PID=$!

# Wait for the listener (the PING path is exercised by rsload itself).
i=0
until "$WORKDIR/bin/rsload" -addr "$ADDR" -workers 1 -duration 100ms >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "rsserve never came up:" >&2
        cat "$WORKDIR/server.log" >&2
        kill "$SERVER_PID" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done

echo "== rsload ($WORKERS workers, $DURATION, verified, traced) =="
"$WORKDIR/bin/rsload" -addr "$ADDR" -workers "$WORKERS" -duration "$DURATION" \
    -pipeline 8 -batch-every 50 -verify -trace-sample 0.05 -json "$JSON_OUT"

echo "== scrape /metrics and validate the exposition =="
"$WORKDIR/bin/rsinspect" prom -url "http://$METRICS_ADDR/metrics" -o "$WORKDIR/metrics.prom"
grep -q '^rangesearch_server_main' "$WORKDIR/metrics.prom" || {
    echo "/metrics carries no rangesearch_server_main samples" >&2
    exit 1
}

echo "== drain (SIGTERM) =="
kill -TERM "$SERVER_PID"
SERVER_STATUS=0
wait "$SERVER_PID" || SERVER_STATUS=$?
cat "$WORKDIR/server.log"
if [ "$SERVER_STATUS" -ne 0 ]; then
    echo "rsserve exited $SERVER_STATUS (want 0: clean drain, no leaked pages)" >&2
    exit 1
fi

echo "== independent post-mortem: checksums + leak scrub =="
"$WORKDIR/bin/rsinspect" verify -store "$STORE"
MANIFEST="$STORE.manifest.json"
hdr=$(sed -n 's/.*"hdr"[[:space:]]*:[[:space:]]*\([0-9][0-9]*\).*/\1/p' "$MANIFEST")
anchor=$(sed -n 's/.*"anchor"[[:space:]]*:[[:space:]]*\([0-9][0-9]*\).*/\1/p' "$MANIFEST")
[ -n "$hdr" ] || { echo "no hdr in $MANIFEST" >&2; exit 1; }
SCRUB="$WORKDIR/bin/rsinspect scrub -store $STORE -kind epst -hdr $hdr -dry -json"
if [ -n "$anchor" ]; then
    SCRUB="$SCRUB -anchor $anchor"
fi
$SCRUB | tee "$WORKDIR/scrub.json"
# The report omits "leaked" entirely when the set is empty.
if grep -q '"leaked"' "$WORKDIR/scrub.json"; then
    echo "scrub reports leaked pages" >&2
    exit 1
fi

echo "== span log readable and non-empty =="
[ -s "$SPANS" ] || { echo "span log $SPANS is empty" >&2; exit 1; }
"$WORKDIR/bin/rsinspect" spans -f "$SPANS" -top 3

# Keep the latency report, span log, and scraped exposition where CI can
# pick them up as artifacts.
if [ -n "${ARTIFACT_DIR:-}" ]; then
    mkdir -p "$ARTIFACT_DIR"
    cp "$JSON_OUT" "$ARTIFACT_DIR/load.json"
    cp "$SPANS" "$ARTIFACT_DIR/spans.jsonl"
    cp "$WORKDIR/metrics.prom" "$ARTIFACT_DIR/metrics.prom"
fi

echo "== serve smoke OK =="
