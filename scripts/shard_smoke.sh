#!/usr/bin/env sh
# End-to-end sharded-cluster smoke test: boot three durable rsserve
# shards, front them with rsrouter on a static x-range shard map, drive a
# verified rsload -cluster workload through the router (which fetches the
# TOPOLOGY frame first), scrape the router's /metrics, drain the whole
# fleet with SIGTERM, and assert (a) zero protocol/consistency errors
# through the extra hop, (b) every drain exits clean, (c) each shard
# store passes an independent rsinspect checksum+scrub pass, (d) the
# shard stores' point counts sum to the fleet total the router reported,
# and (e) rsinspect splitplan re-derives a parseable shard spec from a
# populated shard store. CI runs this; `make shard-smoke` runs it
# locally.
set -eu

GO=${GO:-go}
WORKDIR=$(mktemp -d /tmp/rsshard-smoke.XXXXXX)
trap 'rm -rf "$WORKDIR"' EXIT

ROUTER_ADDR=${ROUTER_ADDR:-127.0.0.1:9140}
METRICS_ADDR=${METRICS_ADDR:-127.0.0.1:9146}
S0=${S0:-127.0.0.1:9141}
S1=${S1:-127.0.0.1:9142}
S2=${S2:-127.0.0.1:9143}
DURATION=${DURATION:-3s}
WORKERS=${WORKERS:-6}
DOMAIN=${DOMAIN:-60000}
SPEC="x<20000@$S0,x<40000@$S1,rest@$S2"
JSON_OUT=${JSON_OUT:-$WORKDIR/load.json}

echo "== build =="
$GO build -o "$WORKDIR/bin/" ./cmd/rsserve ./cmd/rsrouter ./cmd/rsload ./cmd/rsinspect

wait_ready() {
    i=0
    until "$WORKDIR/bin/rsload" -addr "$1" -workers 1 -duration 100ms >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 50 ]; then
            echo "$2 never came up:" >&2
            cat "$WORKDIR/$2.log" >&2
            exit 1
        fi
        sleep 0.1
    done
}

echo "== boot 3 shards ($SPEC) =="
SHARD_PIDS=""
n=0
for addr in "$S0" "$S1" "$S2"; do
    "$WORKDIR/bin/rsserve" -store "$WORKDIR/shard$n.db" -addr "$addr" \
        >"$WORKDIR/shard$n.log" 2>&1 &
    SHARD_PIDS="$SHARD_PIDS $!"
    n=$((n + 1))
done
wait_ready "$S0" shard0
wait_ready "$S1" shard1
wait_ready "$S2" shard2

echo "== boot rsrouter ($ROUTER_ADDR, metrics on $METRICS_ADDR) =="
"$WORKDIR/bin/rsrouter" -addr "$ROUTER_ADDR" -shards "$SPEC" \
    -metrics "$METRICS_ADDR" >"$WORKDIR/router.log" 2>&1 &
ROUTER_PID=$!
wait_ready "$ROUTER_ADDR" router

echo "== rsload -cluster ($WORKERS workers, $DURATION, verified through the router) =="
"$WORKDIR/bin/rsload" -addr "$ROUTER_ADDR" -cluster -verify \
    -workers "$WORKERS" -duration "$DURATION" -pipeline 8 \
    -domain "$DOMAIN" -batch-every 50 -json "$JSON_OUT"

# The TOPOLOGY handshake recorded the shard map in the report.
grep -q '"shards": 3' "$JSON_OUT" || {
    echo "load report carries no 3-shard cluster info" >&2
    exit 1
}
# The router's STATS snapshot (fetched by rsload) is the fleet total.
FLEET_LEN=$(sed -n '/"server_stats"/,$p' "$JSON_OUT" \
    | sed -n 's/.*"len"[[:space:]]*:[[:space:]]*\([0-9][0-9]*\).*/\1/p' | head -1)
[ -n "$FLEET_LEN" ] || { echo "no fleet len in $JSON_OUT" >&2; exit 1; }

echo "== scrape router /metrics =="
"$WORKDIR/bin/rsinspect" prom -url "http://$METRICS_ADDR/metrics" -o "$WORKDIR/metrics.prom"
grep -q '^rangesearch_router_main' "$WORKDIR/metrics.prom" || {
    echo "/metrics carries no rangesearch_router_main samples" >&2
    exit 1
}

echo "== drain fleet (SIGTERM router first, then shards) =="
kill -TERM "$ROUTER_PID"
STATUS=0
wait "$ROUTER_PID" || STATUS=$?
cat "$WORKDIR/router.log"
if [ "$STATUS" -ne 0 ]; then
    echo "rsrouter exited $STATUS (want 0: clean drain)" >&2
    exit 1
fi
for pid in $SHARD_PIDS; do
    kill -TERM "$pid"
    STATUS=0
    wait "$pid" || STATUS=$?
    if [ "$STATUS" -ne 0 ]; then
        echo "a shard exited $STATUS (want 0: clean drain, no leaked pages)" >&2
        cat "$WORKDIR"/shard*.log >&2
        exit 1
    fi
done

echo "== independent post-mortem: per-shard checksums + scrub + point counts =="
SUM=0
n=0
while [ "$n" -lt 3 ]; do
    STORE="$WORKDIR/shard$n.db"
    "$WORKDIR/bin/rsinspect" verify -store "$STORE"
    MANIFEST="$STORE.manifest.json"
    hdr=$(sed -n 's/.*"hdr"[[:space:]]*:[[:space:]]*\([0-9][0-9]*\).*/\1/p' "$MANIFEST")
    anchor=$(sed -n 's/.*"anchor"[[:space:]]*:[[:space:]]*\([0-9][0-9]*\).*/\1/p' "$MANIFEST")
    [ -n "$hdr" ] || { echo "no hdr in $MANIFEST" >&2; exit 1; }
    "$WORKDIR/bin/rsinspect" scrub -store "$STORE" -kind epst -hdr "$hdr" -anchor "$anchor" \
        -dry -json >"$WORKDIR/scrub$n.json"
    if grep -q '"leaked"' "$WORKDIR/scrub$n.json"; then
        echo "shard$n scrub reports leaked pages" >&2
        exit 1
    fi
    # splitplan doubles as the offline point counter (and proves each
    # store's x-distribution is re-plannable).
    "$WORKDIR/bin/rsinspect" splitplan -store "$STORE" -n 2 -json >"$WORKDIR/splitplan$n.json"
    grep -q '"spec"' "$WORKDIR/splitplan$n.json" || {
        echo "splitplan on shard$n emitted no spec" >&2
        exit 1
    }
    pts=$(sed -n 's/.*"points"[[:space:]]*:[[:space:]]*\([0-9][0-9]*\).*/\1/p' "$WORKDIR/splitplan$n.json" | head -1)
    [ -n "$pts" ] || { echo "no point count in shard$n split plan" >&2; exit 1; }
    echo "shard$n: $pts points"
    SUM=$((SUM + pts))
    n=$((n + 1))
done
if [ "$SUM" -ne "$FLEET_LEN" ]; then
    echo "shard stores hold $SUM points, router reported $FLEET_LEN" >&2
    exit 1
fi
echo "fleet total: $SUM points across 3 shard stores == router len $FLEET_LEN"

# Keep the load report, scraped exposition, and split plans where CI can
# pick them up as artifacts.
if [ -n "${ARTIFACT_DIR:-}" ]; then
    mkdir -p "$ARTIFACT_DIR"
    cp "$JSON_OUT" "$ARTIFACT_DIR/shard-load.json"
    cp "$WORKDIR/metrics.prom" "$ARTIFACT_DIR/router-metrics.prom"
    cp "$WORKDIR/splitplan0.json" "$ARTIFACT_DIR/splitplan.json"
fi

echo "== shard smoke OK =="
