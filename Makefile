GO ?= go

.PHONY: all build test race bench cover vet fmt sweep bound experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Fault sweeps: fail every store operation of each structure's workload in
# turn and assert errors surface, nothing panics, structures stay readable.
sweep:
	$(GO) test ./internal/... -run 'FaultSweep|CrashRecovery' -v

# Empirical bound check (e14): per-op I/O overhead vs the Theorem 6/7
# allowances; exits 3 on violation. The same check gates CI.
bound:
	$(GO) run ./cmd/rsbench -quick -bound -json -outdir trajectory

# Operation-level + per-experiment benchmarks (quick instances).
bench:
	$(GO) test -bench=. -benchmem .

# Full-size experiment tables (the numbers recorded in EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/rsbench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/indexability
	$(GO) run ./examples/timeseries
	$(GO) run ./examples/intervals
	$(GO) run ./examples/spatial

clean:
	$(GO) clean ./...
