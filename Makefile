GO ?= go

.PHONY: all build test race bench cover vet fmt sweep recover-sweep fuzz-short bound experiments examples clean soak model trajectory serve load serve-smoke chaos repl-smoke chaos-repl shard-smoke chaos-shard writeopt-smoke chaos-writeopt

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Fault sweeps: fail every store operation of each structure's workload in
# turn and assert errors surface, nothing panics, structures stay readable.
sweep:
	$(GO) test ./internal/... -run 'FaultSweep|CrashRecovery' -v

# Recovery sweeps: crash each structure's scripted update at EVERY mutating
# backing-store operation, reopen, run WAL recovery, and assert the state
# is exactly pre-op or post-op with invariants intact and a clean file.
recover-sweep:
	$(GO) test ./internal/... -run 'TestRecoverySweep|TestTxRecoverySweepRaw|TestJournalRecoverySweep' -v

# Short coverage-guided fuzz of the hostile-input parsers: WAL records,
# anchors, whole store files, and the rsserve wire-protocol decoders.
# CI runs this; longer runs are manual.
fuzz-short:
	$(GO) test ./internal/eio -run '^$$' -fuzz 'FuzzWALRecord' -fuzztime 10s
	$(GO) test ./internal/eio -run '^$$' -fuzz 'FuzzAnchor' -fuzztime 10s
	$(GO) test ./internal/eio -run '^$$' -fuzz 'FuzzVerifyFile' -fuzztime 10s
	$(GO) test ./internal/server -run '^$$' -fuzz 'FuzzDecodeRequest' -fuzztime 10s
	$(GO) test ./internal/server -run '^$$' -fuzz 'FuzzDecodeIdem' -fuzztime 10s
	$(GO) test ./internal/server -run '^$$' -fuzz 'FuzzDecodeTrace' -fuzztime 10s
	$(GO) test ./internal/server -run '^$$' -fuzz 'FuzzDecodeResponse' -fuzztime 10s
	$(GO) test ./internal/server -run '^$$' -fuzz 'FuzzReadFrame' -fuzztime 10s
	$(GO) test ./internal/server -run '^$$' -fuzz 'FuzzFrameSizeRejection' -fuzztime 10s
	$(GO) test ./internal/router -run '^$$' -fuzz 'FuzzDecodeTopology' -fuzztime 10s
	$(GO) test ./internal/router -run '^$$' -fuzz 'FuzzParseShards' -fuzztime 10s
	$(GO) test ./internal/wbuf -run '^$$' -fuzz 'FuzzDecodeBufJournal' -fuzztime 10s

# Concurrency soak: snapshot readers vs a group-committing writer under
# the race detector, with the single-writer linearizability checks
# (epoch-prefix reads, monotone epochs, cross-reader agreement).
soak:
	$(GO) test -race ./internal/core -run 'TestConcurrentSoak|TestConcurrentGroupCommit|TestConcurrentDurableGroupCommit' -count=1 -v

# Model-based differential harness: random op sequences replayed against a
# naive O(N) model over every structure × wrapper config, with shrinking.
# Set MODELTEST_ARTIFACTS=<dir> to keep shrunk failing sequences.
model:
	$(GO) test ./internal/core/modeltest -run TestDifferential -count=1 -v

# Empirical bound check (e14): per-op I/O overhead vs the Theorem 6/7
# allowances; exits 3 on violation. The same check gates CI.
bound:
	$(GO) run ./cmd/rsbench -quick -bound -json -outdir trajectory

# Regenerate the committed trajectory snapshots that the I/O regression
# guard (internal/bench/regression_test.go) replays with tolerance zero.
trajectory:
	$(GO) run ./cmd/rsbench -quick -exp e7,concurrent,writeopt -workers 8 -json -outdir trajectory

# Boot a durable file-backed rsserve on a throwaway store (Ctrl-C drains
# and leak-checks it). STORE/ADDR are overridable.
STORE ?= /tmp/rsserve.db
ADDR  ?= 127.0.0.1:9035
serve:
	$(GO) run ./cmd/rsserve -store $(STORE) -addr $(ADDR) -metrics 127.0.0.1:9036

# Drive a verified mixed workload against a running rsserve.
load:
	$(GO) run ./cmd/rsload -addr $(ADDR) -workers 8 -duration 5s -pipeline 8 -verify

# End-to-end network smoke: boot rsserve on a temp store, run rsload with
# verification, SIGTERM-drain, and scrub the store file. CI runs this.
serve-smoke:
	./scripts/serve_smoke.sh

# Kill-and-recover chaos: SIGKILL/restart a real rsserve 10 times under
# verified resilient load through a fault-injecting proxy. Zero lost or
# duplicated writes, clean drain, scrub-clean store — or it exits nonzero.
chaos:
	./scripts/chaos.sh

# Replicated serving smoke: primary + two log-shipping replicas under
# verified load with replica read fan-out, then SIGKILL the primary,
# SIGUSR1-promote a replica, and re-verify against the new timeline.
# CI runs this too.
repl-smoke:
	./scripts/repl_smoke.sh

# Replicated kill-and-recover chaos: every cycle kills a replica,
# degrades the replication link, and SIGKILLs the primary followed by a
# promotion — ≥5 promotions total under verified resilient load. Zero
# lost or duplicated acked writes, term == promotions, converged
# replicas, scrub-clean stores — or it exits nonzero.
chaos-repl:
	./scripts/repl_chaos.sh

# Sharded serving smoke: three durable shards behind rsrouter on a static
# x-range shard map, verified rsload -cluster through the router, clean
# fleet drain, per-shard scrub, and sum-of-shards == router total.
# CI runs this too.
shard-smoke:
	./scripts/shard_smoke.sh

# Sharded kill-and-recover chaos: SIGKILL/restart a rotating shard under
# verified load through a real rsrouter. Zero lost or duplicated acked
# writes, clean drains, leak-free stores, exact fleet accounting — or it
# exits nonzero.
chaos-shard:
	$(GO) test ./internal/server/chaos -run TestChaosSharded -count=1 -v

# Write-optimized serving smoke: boot rsserve -write-buffer on a temp
# store, run a verified write-heavy zipfian burst, SIGKILL mid-burst,
# reopen (journal replay), re-verify under load, drain, and scrub.
# CI runs this too.
writeopt-smoke:
	./scripts/writeopt_smoke.sh

# Buffered kill-and-recover chaos: SIGKILL/restart an rsserve running
# -write-buffer under verified resilient load. Every acknowledged
# buffered write must survive the kill via journal replay — zero lost or
# duplicated acked writes, clean drain, scrub-clean store.
chaos-writeopt:
	$(GO) test ./internal/server/chaos -run TestChaosWriteBuffered -count=1 -v

# Operation-level + per-experiment benchmarks (quick instances).
bench:
	$(GO) test -bench=. -benchmem .

# Full-size experiment tables (the numbers recorded in EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/rsbench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/indexability
	$(GO) run ./examples/timeseries
	$(GO) run ./examples/intervals
	$(GO) run ./examples/spatial

clean:
	$(GO) clean ./...
